// Package quant implements the error-controlled linear-scaling quantizer
// shared by the SZ-style compressors. Given a prediction p for a true value
// v and an error bound eb, the quantizer emits an integer code such that the
// reconstruction r = p + 2·eb·code satisfies |v − r| ≤ eb. Values whose code
// would overflow the code range are escaped as "unpredictable" and stored
// verbatim, preserving the bound exactly.
package quant

import "math"

// RadiusDefault is the default quantization code radius (symmetric range of
// representable codes), matching SZ's 16-bit default (±32768).
const RadiusDefault = 32768

// Quantizer maps prediction errors to integer codes under an absolute error
// bound. The zero code is reserved for the "unpredictable" escape so that
// decoders can recognize it without side channels; predictable codes are
// offset by Radius.
type Quantizer struct {
	// EB is the absolute error bound. Must be > 0.
	EB float64
	// Radius is the code radius. Codes lie in (0, 2·Radius]; 0 escapes.
	Radius int

	// Outliers accumulates the verbatim values of escaped samples in
	// encounter order. The decoder consumes them in the same order.
	Outliers []float64
	outPos   int
}

// New returns a quantizer with the default radius.
func New(eb float64) *Quantizer {
	if eb <= 0 {
		panic("quant: error bound must be positive")
	}
	return &Quantizer{EB: eb, Radius: RadiusDefault}
}

// Encode quantizes value v against prediction pred. It returns the code and
// the reconstructed value the decoder will produce (which the encoder must
// use in place of v for subsequent predictions).
func (q *Quantizer) Encode(v, pred float64) (code int32, recon float64) {
	diff := v - pred
	half := q.EB // bin half-width
	k := math.Floor(diff/(2*half) + 0.5)
	if math.Abs(k) >= float64(q.Radius) || math.IsNaN(k) || math.IsInf(k, 0) {
		q.Outliers = append(q.Outliers, v)
		return 0, v
	}
	r := pred + 2*half*k
	// Guard against floating-point rounding pushing the reconstruction out
	// of bounds (can happen when |pred| >> eb) and against non-finite
	// reconstructions from overflowing 2·eb. The negated comparison is
	// deliberate: it also trips when r is NaN.
	if !(math.Abs(v-r) <= half) {
		q.Outliers = append(q.Outliers, v)
		return 0, v
	}
	return int32(int(k)) + int32(q.Radius), r
}

// Decode reconstructs a value from its code and prediction, consuming an
// outlier when code == 0.
func (q *Quantizer) Decode(code int32, pred float64) float64 {
	if code == 0 {
		v := q.Outliers[q.outPos]
		q.outPos++
		return v
	}
	k := float64(int(code) - q.Radius)
	return pred + 2*q.EB*k
}

// ResetDecode rewinds the outlier cursor for a fresh decode pass.
func (q *Quantizer) ResetDecode() { q.outPos = 0 }
