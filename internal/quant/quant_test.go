package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeWithinBound(t *testing.T) {
	q := New(0.01)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		v := rng.NormFloat64() * 100
		pred := v + rng.NormFloat64()*0.1
		code, recon := q.Encode(v, pred)
		if math.Abs(recon-v) > q.EB+1e-15 {
			t.Fatalf("encoder recon out of bound: |%g-%g| > %g", recon, v, q.EB)
		}
		_ = code
	}
}

func TestDecoderMatchesEncoderRecon(t *testing.T) {
	enc := New(0.05)
	rng := rand.New(rand.NewSource(2))
	n := 5000
	vals := make([]float64, n)
	preds := make([]float64, n)
	codes := make([]int32, n)
	recons := make([]float64, n)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 10
		preds[i] = vals[i] + rng.NormFloat64()
		codes[i], recons[i] = enc.Encode(vals[i], preds[i])
	}
	dec := New(0.05)
	dec.Outliers = enc.Outliers
	for i := range vals {
		got := dec.Decode(codes[i], preds[i])
		if got != recons[i] {
			t.Fatalf("decode mismatch at %d: %g vs %g", i, got, recons[i])
		}
	}
}

func TestOutlierEscape(t *testing.T) {
	q := New(1e-9)
	// A prediction error of 1.0 vastly exceeds radius*2*eb → escape.
	code, recon := q.Encode(1.0, 0.0)
	if code != 0 {
		t.Fatalf("expected escape code 0, got %d", code)
	}
	if recon != 1.0 {
		t.Fatalf("escape must store verbatim, got %g", recon)
	}
	if len(q.Outliers) != 1 || q.Outliers[0] != 1.0 {
		t.Fatalf("outliers = %v", q.Outliers)
	}
}

func TestZeroCodeReservedForEscape(t *testing.T) {
	q := New(0.5)
	// Perfect prediction → k = 0 → code = Radius, never 0.
	code, _ := q.Encode(3.0, 3.0)
	if code != int32(q.Radius) {
		t.Fatalf("perfect prediction code = %d, want %d", code, q.Radius)
	}
}

func TestNaNEscapes(t *testing.T) {
	q := New(0.1)
	code, recon := q.Encode(math.NaN(), 0)
	if code != 0 || !math.IsNaN(recon) {
		t.Fatalf("NaN must escape, got code %d recon %v", code, recon)
	}
}

func TestResetDecode(t *testing.T) {
	q := New(1e-9)
	q.Encode(1.0, 0.0)
	q.Encode(2.0, 0.0)
	if q.Decode(0, 0) != 1.0 || q.Decode(0, 0) != 2.0 {
		t.Fatal("outlier order wrong")
	}
	q.ResetDecode()
	if q.Decode(0, 0) != 1.0 {
		t.Fatal("ResetDecode did not rewind")
	}
}

func TestNewPanicsOnZeroEB(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}

func TestQuickErrorBoundInvariant(t *testing.T) {
	// Property: for any value/prediction pair, |v − recon| ≤ eb (up to float
	// slop) and the decoder reproduces the encoder's reconstruction.
	prop := func(v, pred float64, ebRaw float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.IsNaN(pred) || math.IsInf(pred, 0) {
			return true
		}
		eb := math.Abs(ebRaw)
		if eb == 0 || math.IsNaN(eb) || math.IsInf(eb, 0) {
			eb = 1e-3
		}
		enc := New(eb)
		code, recon := enc.Encode(v, pred)
		if math.Abs(recon-v) > eb*(1+1e-12) {
			return false
		}
		dec := New(eb)
		dec.Outliers = enc.Outliers
		return dec.Decode(code, pred) == recon
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
