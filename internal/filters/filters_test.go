package filters

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/field"
	"repro/internal/metrics"
	"repro/internal/synth"
	"repro/internal/zfp"
)

func TestMedianRemovesImpulse(t *testing.T) {
	f := field.New(8, 8, 8)
	f.Fill(1)
	f.Set(4, 4, 4, 100) // impulse
	g := Median3(f)
	if g.At(4, 4, 4) != 1 {
		t.Fatalf("median did not remove impulse: %g", g.At(4, 4, 4))
	}
}

func TestMedianPreservesConstant(t *testing.T) {
	f := field.New(6, 6, 6)
	f.Fill(3.5)
	if !Median3(f).Equal(f) {
		t.Fatal("median altered a constant field")
	}
}

func TestGaussianPreservesConstantAndMean(t *testing.T) {
	f := field.New(8, 8, 8)
	f.Fill(2)
	g := Gaussian(f, 1.0)
	for _, v := range g.Data {
		if math.Abs(v-2) > 1e-12 {
			t.Fatalf("gaussian altered constant field: %g", v)
		}
	}
}

func TestGaussianReducesVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := field.New(16, 16, 16)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	g := Gaussian(f, 1.5)
	if g.Variance() >= f.Variance() {
		t.Fatalf("blur did not reduce variance: %g vs %g", g.Variance(), f.Variance())
	}
}

func TestGaussianZeroSigmaIdentity(t *testing.T) {
	f := synth.Generate(synth.S3D, 8, 1)
	if !Gaussian(f, 0).Equal(f) {
		t.Fatal("sigma=0 must be identity")
	}
}

func TestAnisotropicPreservesEdgesBetterThanGaussian(t *testing.T) {
	// A step edge: anisotropic diffusion should keep the step sharper than
	// an equally-smoothing Gaussian.
	f := field.New(16, 16, 16)
	for z := 0; z < 16; z++ {
		for y := 0; y < 16; y++ {
			for x := 0; x < 16; x++ {
				if x < 8 {
					f.Set(x, y, z, 0)
				} else {
					f.Set(x, y, z, 1)
				}
			}
		}
	}
	ad := AnisotropicDiffusion(f, 5, 0.1, 1.0/7)
	gs := Gaussian(f, 1.0)
	// Edge contrast at the step.
	adStep := ad.At(8, 8, 8) - ad.At(7, 8, 8)
	gsStep := gs.At(8, 8, 8) - gs.At(7, 8, 8)
	if adStep <= gsStep {
		t.Fatalf("anisotropic diffusion lost the edge: %g vs gaussian %g", adStep, gsStep)
	}
}

func TestAnisotropicStable(t *testing.T) {
	f := synth.Generate(synth.RT, 12, 2)
	g := AnisotropicDiffusion(f, 10, 0.5, 1.0/7)
	for i, v := range g.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("diffusion diverged at %d", i)
		}
	}
	min0, max0 := f.Range()
	min1, max1 := g.Range()
	if min1 < min0-1e-9 || max1 > max0+1e-9 {
		t.Fatalf("diffusion violated maximum principle: [%g,%g] -> [%g,%g]", min0, max0, min1, max1)
	}
}

// TestTable1FiltersReducePSNR reproduces the direction of Table I: applying
// generic image filters to error-bounded decompressed data lowers PSNR
// relative to the unfiltered decompressed data.
func TestTable1FiltersReducePSNR(t *testing.T) {
	f := synth.Generate(synth.WarpX, 32, 3)
	eb := f.ValueRange() * 5e-3
	data, err := zfp.Compress(f, zfp.Options{Tolerance: eb})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := zfp.Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	base := metrics.PSNR(f, dec)
	for name, g := range map[string]*field.Field{
		"median":   Median3(dec),
		"gaussian": Gaussian(dec, 1.0),
		"aniso":    AnisotropicDiffusion(dec, 5, f.ValueRange()*0.05, 1.0/7),
	} {
		if p := metrics.PSNR(f, g); p >= base {
			t.Fatalf("%s filter unexpectedly improved PSNR: %.2f vs %.2f", name, p, base)
		}
	}
}
