// Package filters implements the classical image post-processing filters the
// paper compares against in Table I (median filter, Gaussian blur,
// anisotropic diffusion). They are applied in 3D. As the paper demonstrates,
// these filters ignore the error-bounded nature of decompressed scientific
// data and over-smooth it, reducing PSNR — unlike the error-bounded Bézier
// post-processor.
package filters

import (
	"math"
	"sort"

	"repro/internal/field"
)

// Median3 applies a 3×3×3 median filter with clamped borders.
func Median3(f *field.Field) *field.Field {
	out := field.New(f.Nx, f.Ny, f.Nz)
	var window [27]float64
	for z := 0; z < f.Nz; z++ {
		for y := 0; y < f.Ny; y++ {
			for x := 0; x < f.Nx; x++ {
				k := 0
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							window[k] = f.At(clamp(x+dx, f.Nx), clamp(y+dy, f.Ny), clamp(z+dz, f.Nz))
							k++
						}
					}
				}
				w := window
				sort.Float64s(w[:])
				out.Set(x, y, z, w[13])
			}
		}
	}
	return out
}

// Gaussian applies a separable Gaussian blur with the given σ (kernel radius
// 3σ rounded up, clamped borders).
func Gaussian(f *field.Field, sigma float64) *field.Field {
	if sigma <= 0 {
		return f.Clone()
	}
	radius := int(math.Ceil(3 * sigma))
	kernel := make([]float64, 2*radius+1)
	sum := 0.0
	for i := range kernel {
		d := float64(i-radius) / sigma
		kernel[i] = math.Exp(-0.5 * d * d)
		sum += kernel[i]
	}
	for i := range kernel {
		kernel[i] /= sum
	}
	out := f.Clone()
	for axis := 0; axis < 3; axis++ {
		out = convolveAxis(out, kernel, radius, axis)
	}
	return out
}

func convolveAxis(f *field.Field, kernel []float64, radius, axis int) *field.Field {
	out := field.New(f.Nx, f.Ny, f.Nz)
	for z := 0; z < f.Nz; z++ {
		for y := 0; y < f.Ny; y++ {
			for x := 0; x < f.Nx; x++ {
				s := 0.0
				for k := -radius; k <= radius; k++ {
					var v float64
					switch axis {
					case 0:
						v = f.At(clamp(x+k, f.Nx), y, z)
					case 1:
						v = f.At(x, clamp(y+k, f.Ny), z)
					default:
						v = f.At(x, y, clamp(z+k, f.Nz))
					}
					s += kernel[k+radius] * v
				}
				out.Set(x, y, z, s)
			}
		}
	}
	return out
}

// AnisotropicDiffusion applies Perona–Malik diffusion: iterations of
// u += λ Σ g(|∇u|)·∇u over the 6-neighborhood, with the exponential
// conductance g(d) = exp(−(d/κ)²). Edges (large gradients) diffuse slowly,
// flat regions smooth quickly.
func AnisotropicDiffusion(f *field.Field, iterations int, kappa, lambda float64) *field.Field {
	if kappa <= 0 {
		kappa = 1
	}
	if lambda <= 0 || lambda > 1.0/6 {
		lambda = 1.0 / 7
	}
	cur := f.Clone()
	next := field.New(f.Nx, f.Ny, f.Nz)
	for it := 0; it < iterations; it++ {
		for z := 0; z < f.Nz; z++ {
			for y := 0; y < f.Ny; y++ {
				for x := 0; x < f.Nx; x++ {
					c := cur.At(x, y, z)
					acc := 0.0
					for _, nb := range [6][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}} {
						v := cur.At(clamp(x+nb[0], f.Nx), clamp(y+nb[1], f.Ny), clamp(z+nb[2], f.Nz))
						d := v - c
						g := math.Exp(-(d / kappa) * (d / kappa))
						acc += g * d
					}
					next.Set(x, y, z, c+lambda*acc)
				}
			}
		}
		cur, next = next, cur
	}
	return cur
}

func clamp(v, n int) int {
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}
