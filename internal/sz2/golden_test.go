package sz2

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/field"
	"repro/internal/synth"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures from the current coder")

// goldenField is the deterministic input every fixture derives from. Odd
// dimensions force partial boundary blocks through the block walker.
func goldenField() (*field.Field, float64) {
	f := synth.GenerateDims(synth.Nyx, 20, 17, 13, 7)
	return f, f.ValueRange() * 1e-3
}

// TestGoldenStream locks the on-disk format across entropy-stage rewrites:
// the committed fixture was produced by the pre-rewrite coder, and the
// current encoder must reproduce it byte-for-byte (and decode it).
func TestGoldenStream(t *testing.T) {
	f, eb := goldenField()
	blob, err := Compress(f, Options{EB: eb})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden.sz2")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read fixture (regenerate with -update): %v", err)
	}
	if !bytes.Equal(blob, want) {
		t.Fatalf("encoder output diverged from golden fixture: got %d bytes, fixture %d bytes", len(blob), len(want))
	}
	g, err := Decompress(want)
	if err != nil {
		t.Fatalf("decode fixture: %v", err)
	}
	for i := range f.Data {
		d := g.Data[i] - f.Data[i]
		if d < -eb || d > eb {
			t.Fatalf("sample %d outside error bound: |%g| > %g", i, d, eb)
		}
	}
}
