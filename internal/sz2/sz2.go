// Package sz2 implements a block-wise, error-bounded lossy compressor
// modeled after SZ2 (Tao et al., IPDPS 2017; Liang et al., BigData 2018).
//
// The field is partitioned into cubic blocks (6³ by default; the paper uses
// 4³ for multi-resolution data, following AMRIC). Each block is predicted
// either by the 3D Lorenzo predictor (using previously reconstructed
// neighbors, which may cross block boundaries in raster order) or by a
// block-local linear regression plane (coefficients quantized and stored),
// whichever yields the smaller squared error on the original samples.
// Residuals are quantized under the absolute error bound and entropy coded.
//
// The block-local regression mode is what produces the blocking artifacts
// discussed in §III-B of the paper: each block's plane fit ignores its
// neighbors, so at high compression ratios adjacent blocks disagree at their
// shared faces — exactly the discontinuities the Bézier post-processor
// repairs.
package sz2

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/field"
	"repro/internal/flatepool"
	"repro/internal/huffman"
	"repro/internal/quant"
)

// DefaultBlockSize is SZ2's standard block size for uniform data.
const DefaultBlockSize = 6

// MultiResBlockSize is the block size AMRIC found optimal for
// multi-resolution data (§III-B of the paper).
const MultiResBlockSize = 4

// Options configures compression.
type Options struct {
	// EB is the absolute error bound (> 0).
	EB float64
	// BlockSize is the cubic block edge (default DefaultBlockSize).
	BlockSize int
	// EntropyLanes selects the entropy stage's lane count: 0 or 1 keep the
	// single-lane huffman format (the default, byte-identical to earlier
	// versions), negative selects automatically from each stream's size,
	// and an explicit power of two (≤ huffman.MaxLanes) writes that many
	// interleaved lanes. Both code chunks use it; the small regression
	// coefficient chunk shrinks the count so no lane is empty. Streams of
	// every lane count decode through the same Decompress.
	EntropyLanes int
}

const magic = "SZ2B"

// mode constants per block.
const (
	modeLorenzo byte = 0
	modeRegress byte = 1
)

// Compress encodes the field under opt.
func Compress(f *field.Field, opt Options) ([]byte, error) {
	if opt.EB <= 0 {
		return nil, errors.New("sz2: error bound must be positive")
	}
	if !huffman.ValidLanes(opt.EntropyLanes) {
		return nil, fmt.Errorf("sz2: invalid entropy lane count %d", opt.EntropyLanes)
	}
	bs := opt.BlockSize
	if bs == 0 {
		bs = DefaultBlockSize
	}
	if bs < 2 {
		return nil, fmt.Errorf("sz2: block size %d too small", bs)
	}

	nx, ny, nz := f.Nx, f.Ny, f.Nz
	recon := make([]float64, len(f.Data))
	q := quant.New(opt.EB)
	// Regression coefficients are quantized on a grid of eb/(2·bs) so the
	// plane's contribution to the prediction error stays well inside eb.
	coefStep := opt.EB / (2 * float64(bs))

	nBlocks := blocksAlong(nx, bs) * blocksAlong(ny, bs) * blocksAlong(nz, bs)
	modes := make([]byte, 0, nBlocks)
	coefCodes := make([]int32, 0, 4*nBlocks)
	codes := make([]int32, 0, len(f.Data))

	forEachBlock(nx, ny, nz, bs, func(x0, y0, z0, bx, by, bz int) {
		useReg, coefs := chooseMode(f, x0, y0, z0, bx, by, bz)
		if useReg {
			modes = append(modes, modeRegress)
			qc := quantizeCoefs(coefs, coefStep)
			coefCodes = append(coefCodes, qc[:]...)
			dq := dequantizeCoefs(qc, coefStep)
			for z := 0; z < bz; z++ {
				for y := 0; y < by; y++ {
					for x := 0; x < bx; x++ {
						i := f.Index(x0+x, y0+y, z0+z)
						pred := dq[0] + dq[1]*float64(x) + dq[2]*float64(y) + dq[3]*float64(z)
						c, r := q.Encode(f.Data[i], pred)
						codes = append(codes, c)
						recon[i] = r
					}
				}
			}
		} else {
			modes = append(modes, modeLorenzo)
			for z := 0; z < bz; z++ {
				for y := 0; y < by; y++ {
					for x := 0; x < bx; x++ {
						gx, gy, gz := x0+x, y0+y, z0+z
						i := f.Index(gx, gy, gz)
						pred := lorenzo(recon, nx, ny, gx, gy, gz)
						c, r := q.Encode(f.Data[i], pred)
						codes = append(codes, c)
						recon[i] = r
					}
				}
			}
		}
	})

	// Container. Block sizes ≤ 255 keep the historical single-byte
	// encoding (so every previously written stream stays decodable);
	// larger sizes — which the old writer silently truncated to their low
	// byte — are escaped with 0x00 (never a legal size, bs ≥ 2) followed
	// by a uvarint.
	var payload bytes.Buffer
	payload.Grow(len(modes)/8 + len(codes)/2 + 8*len(q.Outliers) + 64)
	payload.WriteString(magic)
	var tmp [8]byte
	if bs <= 0xFF {
		payload.WriteByte(byte(bs))
	} else {
		payload.WriteByte(0)
		n := binary.PutUvarint(tmp[:], uint64(bs))
		payload.Write(tmp[:n])
	}
	for _, v := range []uint64{uint64(nx), uint64(ny), uint64(nz)} {
		n := binary.PutUvarint(tmp[:], v)
		payload.Write(tmp[:n])
	}
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(opt.EB))
	payload.Write(tmp[:])

	writeChunk := func(b []byte) {
		n := binary.PutUvarint(tmp[:], uint64(len(b)))
		payload.Write(tmp[:n])
		payload.Write(b)
	}
	writeChunk(packBits(modes))
	writeChunk(huffman.EncodeInterleaved(coefCodes, opt.EntropyLanes))
	writeChunk(huffman.EncodeInterleaved(codes, opt.EntropyLanes))
	var outBuf bytes.Buffer
	for _, v := range q.Outliers {
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
		outBuf.Write(tmp[:])
	}
	writeChunk(outBuf.Bytes())

	return flatepool.Deflate(payload.Bytes())
}

// Decompress decodes a buffer produced by Compress.
func Decompress(data []byte) (*field.Field, error) { return DecompressWorkers(data, 1) }

// DecompressWorkers is Decompress with a goroutine bound for the entropy
// stage: interleaved code chunks decode their lanes on up to workers
// goroutines (≤ 0 means the runtime default). Single-lane chunks and
// workers == 1 decode fully serially. The result is identical either way.
func DecompressWorkers(data []byte, workers int) (*field.Field, error) {
	fr := flate.NewReader(bytes.NewReader(data))
	payload, err := io.ReadAll(fr)
	if err != nil {
		return nil, fmt.Errorf("sz2: inflate: %w", err)
	}
	if len(payload) < 5 || string(payload[:4]) != magic {
		return nil, errors.New("sz2: bad magic")
	}
	buf := payload[4:]
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(buf)
		if n <= 0 {
			return 0, errors.New("sz2: truncated header")
		}
		buf = buf[n:]
		return v, nil
	}
	bs := int(buf[0])
	buf = buf[1:]
	if bs == 0 { // escape: block size > 255 follows as a uvarint
		bs64, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if bs64 <= 0xFF || bs64 > math.MaxInt32 { // reject wrap-around and non-canonical escapes
			return nil, errors.New("sz2: invalid header")
		}
		bs = int(bs64)
	}
	nx64, err := readUvarint()
	if err != nil {
		return nil, err
	}
	ny64, err := readUvarint()
	if err != nil {
		return nil, err
	}
	nz64, err := readUvarint()
	if err != nil {
		return nil, err
	}
	nx, ny, nz, _, err := field.CheckDims(nx64, ny64, nz64)
	if err != nil || bs < 2 {
		return nil, errors.New("sz2: invalid header")
	}
	if len(buf) < 8 {
		return nil, errors.New("sz2: truncated eb")
	}
	eb := math.Float64frombits(binary.LittleEndian.Uint64(buf))
	buf = buf[8:]
	if !(eb > 0) {
		return nil, errors.New("sz2: invalid eb")
	}

	readChunk := func() ([]byte, error) {
		l, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if uint64(len(buf)) < l {
			return nil, errors.New("sz2: truncated chunk")
		}
		c := buf[:l]
		buf = buf[l:]
		return c, nil
	}
	modesPacked, err := readChunk()
	if err != nil {
		return nil, err
	}
	coefChunk, err := readChunk()
	if err != nil {
		return nil, err
	}
	codeChunk, err := readChunk()
	if err != nil {
		return nil, err
	}
	outChunk, err := readChunk()
	if err != nil {
		return nil, err
	}

	nBlocks := blocksAlong(nx, bs) * blocksAlong(ny, bs) * blocksAlong(nz, bs)
	modes := unpackBits(modesPacked, nBlocks)
	coefCodes, err := huffman.DecodeWorkers(coefChunk, workers)
	if err != nil {
		return nil, err
	}
	codes, err := huffman.DecodeWorkers(codeChunk, workers)
	if err != nil {
		return nil, err
	}
	if len(codes) != nx*ny*nz {
		return nil, fmt.Errorf("sz2: code count %d != %d", len(codes), nx*ny*nz)
	}
	if len(outChunk)%8 != 0 {
		return nil, errors.New("sz2: ragged outlier chunk")
	}
	outliers := make([]float64, len(outChunk)/8)
	for i := range outliers {
		outliers[i] = math.Float64frombits(binary.LittleEndian.Uint64(outChunk[i*8:]))
	}

	g := field.New(nx, ny, nz)
	recon := g.Data
	q := quant.New(eb)
	q.Outliers = outliers
	coefStep := eb / (2 * float64(bs))

	cpos, kpos, bpos := 0, 0, 0
	var decodeErr error
	forEachBlock(nx, ny, nz, bs, func(x0, y0, z0, bx, by, bz int) {
		if decodeErr != nil {
			return
		}
		if bpos >= len(modes) {
			decodeErr = errors.New("sz2: mode stream underrun")
			return
		}
		mode := modes[bpos]
		bpos++
		if mode == modeRegress {
			if cpos+4 > len(coefCodes) {
				decodeErr = errors.New("sz2: coefficient stream underrun")
				return
			}
			var qc [4]int32
			copy(qc[:], coefCodes[cpos:cpos+4])
			cpos += 4
			dq := dequantizeCoefs(qc, coefStep)
			for z := 0; z < bz; z++ {
				for y := 0; y < by; y++ {
					for x := 0; x < bx; x++ {
						i := g.Index(x0+x, y0+y, z0+z)
						pred := dq[0] + dq[1]*float64(x) + dq[2]*float64(y) + dq[3]*float64(z)
						recon[i] = q.Decode(codes[kpos], pred)
						kpos++
					}
				}
			}
		} else {
			for z := 0; z < bz; z++ {
				for y := 0; y < by; y++ {
					for x := 0; x < bx; x++ {
						gx, gy, gz := x0+x, y0+y, z0+z
						i := g.Index(gx, gy, gz)
						pred := lorenzo(recon, nx, ny, gx, gy, gz)
						recon[i] = q.Decode(codes[kpos], pred)
						kpos++
					}
				}
			}
		}
	})
	if decodeErr != nil {
		return nil, decodeErr
	}
	return g, nil
}

// BlockSizeOf returns the block size recorded in a compressed stream, needed
// by the post-processor to locate block boundaries.
func BlockSizeOf(data []byte) (int, error) {
	fr := flate.NewReader(bytes.NewReader(data))
	hdr := make([]byte, 5+binary.MaxVarintLen64)
	n, err := io.ReadFull(fr, hdr)
	if err == io.ErrUnexpectedEOF && n >= 5 {
		hdr = hdr[:n] // tiny stream: header may be shorter than the max varint
	} else if err != nil {
		return 0, err
	}
	if string(hdr[:4]) != magic {
		return 0, errors.New("sz2: bad magic")
	}
	if hdr[4] != 0 {
		return int(hdr[4]), nil
	}
	bs, vn := binary.Uvarint(hdr[5:]) // escaped: block size > 255
	if vn <= 0 {
		return 0, errors.New("sz2: truncated header")
	}
	if bs <= 0xFF || bs > math.MaxInt32 { // escape only legal for 256..MaxInt32
		return 0, errors.New("sz2: invalid block size")
	}
	return int(bs), nil
}

// lorenzo computes the 3D Lorenzo prediction from reconstructed neighbors;
// out-of-domain neighbors contribute zero.
func lorenzo(recon []float64, nx, ny int, x, y, z int) float64 {
	at := func(i, j, k int) float64 {
		if i < 0 || j < 0 || k < 0 {
			return 0
		}
		return recon[i+nx*(j+ny*k)]
	}
	return at(x-1, y, z) + at(x, y-1, z) + at(x, y, z-1) -
		at(x-1, y-1, z) - at(x-1, y, z-1) - at(x, y-1, z-1) +
		at(x-1, y-1, z-1)
}

// chooseMode decides between Lorenzo and regression for a block by comparing
// squared prediction errors on the original samples (the standard SZ2
// sampling-free heuristic: Lorenzo error is estimated with original-value
// neighbors, which closely tracks the reconstructed-value error).
func chooseMode(f *field.Field, x0, y0, z0, bx, by, bz int) (useReg bool, coefs [4]float64) {
	coefs = fitPlane(f, x0, y0, z0, bx, by, bz)
	var seReg, seLor float64
	for z := 0; z < bz; z++ {
		for y := 0; y < by; y++ {
			for x := 0; x < bx; x++ {
				gx, gy, gz := x0+x, y0+y, z0+z
				v := f.At(gx, gy, gz)
				pr := coefs[0] + coefs[1]*float64(x) + coefs[2]*float64(y) + coefs[3]*float64(z)
				d := v - pr
				seReg += d * d
				pl := lorenzo(f.Data, f.Nx, f.Ny, gx, gy, gz)
				d = v - pl
				seLor += d * d
			}
		}
	}
	return seReg < seLor, coefs
}

// fitPlane computes the least-squares fit v ≈ a + b·x + c·y + d·z over the
// block using local coordinates. Because the coordinates are a regular grid,
// the normal equations are diagonal after centering.
func fitPlane(f *field.Field, x0, y0, z0, bx, by, bz int) [4]float64 {
	n := float64(bx * by * bz)
	mx, my, mz := float64(bx-1)/2, float64(by-1)/2, float64(bz-1)/2
	var sum, sxv, syv, szv float64
	for z := 0; z < bz; z++ {
		for y := 0; y < by; y++ {
			for x := 0; x < bx; x++ {
				v := f.At(x0+x, y0+y, z0+z)
				sum += v
				sxv += (float64(x) - mx) * v
				syv += (float64(y) - my) * v
				szv += (float64(z) - mz) * v
			}
		}
	}
	mean := sum / n
	// Var of coordinate u over the grid: n * var1(u), var1 = (len²−1)/12.
	sxx := n * float64(bx*bx-1) / 12
	syy := n * float64(by*by-1) / 12
	szz := n * float64(bz*bz-1) / 12
	var b, c, d float64
	if bx > 1 {
		b = sxv / sxx
	}
	if by > 1 {
		c = syv / syy
	}
	if bz > 1 {
		d = szv / szz
	}
	a := mean - b*mx - c*my - d*mz
	return [4]float64{a, b, c, d}
}

func quantizeCoefs(c [4]float64, step float64) [4]int32 {
	var q [4]int32
	for i, v := range c {
		k := math.Round(v / step)
		if k > math.MaxInt32 || k < math.MinInt32 || math.IsNaN(k) {
			k = 0 // degenerate fit; regression will simply predict poorly
		}
		q[i] = int32(k)
	}
	return q
}

func dequantizeCoefs(q [4]int32, step float64) [4]float64 {
	var c [4]float64
	for i, v := range q {
		c[i] = float64(v) * step
	}
	return c
}

func blocksAlong(n, bs int) int { return (n + bs - 1) / bs }

// forEachBlock visits blocks in raster order, passing origin and clamped size.
func forEachBlock(nx, ny, nz, bs int, fn func(x0, y0, z0, bx, by, bz int)) {
	for z0 := 0; z0 < nz; z0 += bs {
		bz := bs
		if z0+bz > nz {
			bz = nz - z0
		}
		for y0 := 0; y0 < ny; y0 += bs {
			by := bs
			if y0+by > ny {
				by = ny - y0
			}
			for x0 := 0; x0 < nx; x0 += bs {
				bx := bs
				if x0+bx > nx {
					bx = nx - x0
				}
				fn(x0, y0, z0, bx, by, bz)
			}
		}
	}
}

// packBits packs a byte-per-flag slice into a bitmap.
func packBits(flags []byte) []byte {
	out := make([]byte, (len(flags)+7)/8)
	for i, f := range flags {
		if f != 0 {
			out[i/8] |= 1 << uint(7-i%8)
		}
	}
	return out
}

// unpackBits reverses packBits for n flags.
func unpackBits(b []byte, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n && i/8 < len(b); i++ {
		out[i] = b[i/8] >> uint(7-i%8) & 1
	}
	return out
}
