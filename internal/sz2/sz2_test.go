package sz2

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/field"
	"repro/internal/synth"
)

func smoothField(n int) *field.Field {
	f := field.New(n, n, n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				px, py, pz := float64(x)/float64(n), float64(y)/float64(n), float64(z)/float64(n)
				f.Set(x, y, z, math.Sin(5*px)*math.Cos(4*py)*math.Exp(pz))
			}
		}
	}
	return f
}

func TestRoundTripWithinBound(t *testing.T) {
	f := smoothField(20)
	for _, eb := range []float64{1e-2, 1e-4} {
		data, err := Compress(f, Options{EB: eb})
		if err != nil {
			t.Fatal(err)
		}
		g, err := Decompress(data)
		if err != nil {
			t.Fatal(err)
		}
		if d := f.MaxAbsDiff(g); d > eb*(1+1e-12) {
			t.Fatalf("eb=%g: max error %g", eb, d)
		}
	}
}

func TestBlockSizeAbove255(t *testing.T) {
	// Block sizes > 255 use the escaped header encoding (the old writer
	// silently truncated them to their low byte).
	f := smoothField(17)
	eb := 1e-3
	for _, want := range []int{200, 256, 1000} {
		data, err := Compress(f, Options{EB: eb, BlockSize: want})
		if err != nil {
			t.Fatalf("bs=%d: %v", want, err)
		}
		bs, err := BlockSizeOf(data)
		if err != nil {
			t.Fatalf("bs=%d: %v", want, err)
		}
		if bs != want {
			t.Fatalf("BlockSizeOf = %d, want %d", bs, want)
		}
		g, err := Decompress(data)
		if err != nil {
			t.Fatalf("bs=%d: %v", want, err)
		}
		if d := f.MaxAbsDiff(g); d > eb*(1+1e-12) {
			t.Fatalf("bs=%d: max error %g", want, d)
		}
	}
}

func TestBlockSize4(t *testing.T) {
	f := smoothField(17) // not a multiple of 4: partial blocks
	eb := 1e-3
	data, err := Compress(f, Options{EB: eb, BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := BlockSizeOf(data)
	if err != nil {
		t.Fatal(err)
	}
	if bs != 4 {
		t.Fatalf("BlockSizeOf = %d, want 4", bs)
	}
	g, err := Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.MaxAbsDiff(g); d > eb*(1+1e-12) {
		t.Fatalf("max error %g", d)
	}
}

func TestNonCubeDims(t *testing.T) {
	f := field.New(13, 7, 29)
	rng := rand.New(rand.NewSource(2))
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	eb := 0.05
	data, err := Compress(f, Options{EB: eb})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.MaxAbsDiff(g); d > eb*(1+1e-12) {
		t.Fatalf("max error %g", d)
	}
}

func TestRegressionWinsOnPlanarData(t *testing.T) {
	// A pure plane should be predicted essentially exactly by regression.
	f := field.New(12, 12, 12)
	for z := 0; z < 12; z++ {
		for y := 0; y < 12; y++ {
			for x := 0; x < 12; x++ {
				f.Set(x, y, z, 2+0.5*float64(x)-0.25*float64(y)+0.125*float64(z))
			}
		}
	}
	useReg, _ := chooseMode(f, 0, 0, 0, 6, 6, 6)
	if !useReg {
		t.Fatal("regression should win on planar data")
	}
	data, err := Compress(f, Options{EB: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	cr := float64(f.Bytes()) / float64(len(data))
	if cr < 20 {
		t.Fatalf("planar data should compress extremely well, CR=%.1f", cr)
	}
}

func TestLorenzoPredictorExactOnTrilinear(t *testing.T) {
	// Lorenzo exactly predicts any sum of two-variable functions; the
	// third mixed difference of such fields is zero.
	f := field.New(5, 5, 5)
	for z := 0; z < 5; z++ {
		for y := 0; y < 5; y++ {
			for x := 0; x < 5; x++ {
				f.Set(x, y, z, 1+float64(x)+2*float64(y)+3*float64(z)+
					float64(x*y)+float64(y*z)+float64(x*z))
			}
		}
	}
	for z := 1; z < 5; z++ {
		for y := 1; y < 5; y++ {
			for x := 1; x < 5; x++ {
				pred := lorenzo(f.Data, 5, 5, x, y, z)
				if math.Abs(pred-f.At(x, y, z)) > 1e-9 {
					t.Fatalf("Lorenzo not exact at (%d,%d,%d): %g vs %g",
						x, y, z, pred, f.At(x, y, z))
				}
			}
		}
	}
}

func TestFitPlaneRecoversPlane(t *testing.T) {
	f := field.New(8, 8, 8)
	for z := 0; z < 8; z++ {
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				f.Set(x, y, z, 3-0.5*float64(x)+0.75*float64(y)+0.1*float64(z))
			}
		}
	}
	c := fitPlane(f, 0, 0, 0, 8, 8, 8)
	want := [4]float64{3, -0.5, 0.75, 0.1}
	for i := range c {
		if math.Abs(c[i]-want[i]) > 1e-9 {
			t.Fatalf("coef %d = %g, want %g", i, c[i], want[i])
		}
	}
}

func TestPackUnpackBits(t *testing.T) {
	flags := []byte{1, 0, 1, 1, 0, 0, 0, 1, 1, 0, 1}
	got := unpackBits(packBits(flags), len(flags))
	for i := range flags {
		if got[i] != flags[i] {
			t.Fatalf("bit %d: got %d want %d", i, got[i], flags[i])
		}
	}
}

func TestInvalidInputs(t *testing.T) {
	f := smoothField(8)
	if _, err := Compress(f, Options{EB: 0}); err == nil {
		t.Fatal("expected error for zero eb")
	}
	if _, err := Compress(f, Options{EB: 1, BlockSize: 1}); err == nil {
		t.Fatal("expected error for block size 1")
	}
	if _, err := Decompress([]byte{9, 9}); err == nil {
		t.Fatal("expected error for garbage")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nx, ny, nz := 1+rng.Intn(14), 1+rng.Intn(14), 1+rng.Intn(14)
		f := field.New(nx, ny, nz)
		for i := range f.Data {
			f.Data[i] = rng.NormFloat64() * 100
		}
		eb := 0.01
		bs := []int{4, 6}[rng.Intn(2)]
		data, err := Compress(f, Options{EB: eb, BlockSize: bs})
		if err != nil {
			return false
		}
		g, err := Decompress(data)
		if err != nil {
			return false
		}
		return f.MaxAbsDiff(g) <= eb*(1+1e-12)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRealisticDataset(t *testing.T) {
	f := synth.Generate(synth.S3D, 24, 4)
	eb := f.ValueRange() * 1e-3
	data, err := Compress(f, Options{EB: eb})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.MaxAbsDiff(g); d > eb*(1+1e-12) {
		t.Fatalf("max error %g exceeds %g", d, eb)
	}
	cr := float64(f.Bytes()) / float64(len(data))
	if cr < 3 {
		t.Fatalf("CR %.1f too low for S3D at 1e-3 rel eb", cr)
	}
}
