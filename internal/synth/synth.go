// Package synth generates synthetic scientific datasets that stand in for
// the real simulation outputs evaluated in the paper (Nyx cosmology, WarpX
// electromagnetics, IAMR Rayleigh–Taylor, Hurricane Isabel, S3D combustion).
//
// The generators are deterministic for a given seed and are designed to
// reproduce the statistical characters that drive the paper's results rather
// than the physics: Nyx fields are smooth backgrounds with dense high-range
// halos (making range-threshold ROI selection effective), WarpX fields are
// oscillatory wave packets on a near-zero background, Rayleigh–Taylor fields
// have a sharp perturbed interface, Hurricane fields are a localized vortex
// with many near-zero samples, and S3D fields contain multiscale smooth
// flame-front structures.
package synth

import (
	"math"
	"math/rand"

	"repro/internal/field"
)

// Dataset identifies one of the paper's workloads.
type Dataset string

// The five application datasets from Table III of the paper.
const (
	Nyx       Dataset = "nyx"       // cosmology baryon density
	WarpX     Dataset = "warpx"     // electromagnetic Ez field
	RT        Dataset = "rt"        // Rayleigh–Taylor instability density
	Hurricane Dataset = "hurricane" // hurricane pressure/velocity magnitude
	S3D       Dataset = "s3d"       // combustion species field
)

// All lists every supported dataset.
var All = []Dataset{Nyx, WarpX, RT, Hurricane, S3D}

// Generate produces an n×n×n field of the given dataset kind.
func Generate(kind Dataset, n int, seed int64) *field.Field {
	return GenerateDims(kind, n, n, n, seed)
}

// GenerateDims produces a field of the given dataset kind with explicit
// dimensions. Unknown kinds panic; callers select from All.
func GenerateDims(kind Dataset, nx, ny, nz int, seed int64) *field.Field {
	switch kind {
	case Nyx:
		return NyxDensity(nx, ny, nz, seed)
	case WarpX:
		return WarpXEz(nx, ny, nz, seed)
	case RT:
		return RayleighTaylor(nx, ny, nz, seed)
	case Hurricane:
		return HurricaneField(nx, ny, nz, seed)
	case S3D:
		return S3DFlame(nx, ny, nz, seed)
	default:
		panic("synth: unknown dataset " + string(kind))
	}
}

// NyxDensity mimics a cosmological baryon-density snapshot: a smooth
// large-scale background (sum of long-wavelength modes) plus a population of
// compact "halos" — sharply peaked overdensities — whose centers cluster
// along filaments. Values are strictly positive and span several orders of
// magnitude, like the real Nyx baryon_density field.
func NyxDensity(nx, ny, nz int, seed int64) *field.Field {
	rng := rand.New(rand.NewSource(seed))
	f := field.New(nx, ny, nz)

	// Large-scale structure: a handful of low-frequency cosine modes.
	type mode struct {
		kx, ky, kz float64
		phase, amp float64
	}
	modes := make([]mode, 6)
	for i := range modes {
		modes[i] = mode{
			kx:    float64(1+rng.Intn(3)) * 2 * math.Pi,
			ky:    float64(1+rng.Intn(3)) * 2 * math.Pi,
			kz:    float64(1+rng.Intn(3)) * 2 * math.Pi,
			phase: rng.Float64() * 2 * math.Pi,
			amp:   0.3 + 0.4*rng.Float64(),
		}
	}

	// Halos: compact Gaussian peaks clustered along 3 random filaments.
	type halo struct {
		cx, cy, cz float64
		r, amp     float64
	}
	nh := 24 + rng.Intn(16)
	halos := make([]halo, nh)
	for i := range halos {
		// Pick a filament (random line segment) and scatter around it.
		t := rng.Float64()
		fi := rng.Intn(3)
		frng := rand.New(rand.NewSource(seed + int64(fi) + 100))
		ax, ay, az := frng.Float64(), frng.Float64(), frng.Float64()
		bx, by, bz := frng.Float64(), frng.Float64(), frng.Float64()
		halos[i] = halo{
			cx:  ax + t*(bx-ax) + 0.08*rng.NormFloat64(),
			cy:  ay + t*(by-ay) + 0.08*rng.NormFloat64(),
			cz:  az + t*(bz-az) + 0.08*rng.NormFloat64(),
			r:   0.015 + 0.03*rng.Float64(),
			amp: math.Exp(2.0 + 2.5*rng.Float64()), // overdensity 7x..90x
		}
	}

	for z := 0; z < nz; z++ {
		pz := (float64(z) + 0.5) / float64(nz)
		for y := 0; y < ny; y++ {
			py := (float64(y) + 0.5) / float64(ny)
			for x := 0; x < nx; x++ {
				px := (float64(x) + 0.5) / float64(nx)
				v := 1.0
				for _, m := range modes {
					v += m.amp * math.Cos(m.kx*px+m.ky*py+m.kz*pz+m.phase)
				}
				if v < 0.05 {
					v = 0.05
				}
				for _, h := range halos {
					dx, dy, dz := px-h.cx, py-h.cy, pz-h.cz
					d2 := dx*dx + dy*dy + dz*dz
					v += h.amp * math.Exp(-d2/(2*h.r*h.r))
				}
				f.Set(x, y, z, v*1e8) // scale to Nyx-like absolute magnitudes
			}
		}
	}
	return f
}

// WarpXEz mimics the Ez component of a laser-plasma simulation: one or more
// oscillatory wave packets (carrier wave under a Gaussian envelope)
// propagating through a quiet background with weak noise. Most of the domain
// is near zero; the packet region oscillates with high local range.
func WarpXEz(nx, ny, nz int, seed int64) *field.Field {
	rng := rand.New(rand.NewSource(seed))
	f := field.New(nx, ny, nz)

	type packet struct {
		cx, cy, cz float64 // envelope center
		sx, sy, sz float64 // envelope widths
		k, phase   float64 // carrier along z
		amp        float64
	}
	packets := []packet{
		{cx: 0.5, cy: 0.5, cz: 0.35, sx: 0.18, sy: 0.18, sz: 0.10, k: 40 * math.Pi, phase: rng.Float64(), amp: 1.0},
		{cx: 0.45, cy: 0.55, cz: 0.65, sx: 0.10, sy: 0.10, sz: 0.06, k: 60 * math.Pi, phase: rng.Float64(), amp: 0.45},
	}

	for z := 0; z < nz; z++ {
		pz := (float64(z) + 0.5) / float64(nz)
		for y := 0; y < ny; y++ {
			py := (float64(y) + 0.5) / float64(ny)
			for x := 0; x < nx; x++ {
				px := (float64(x) + 0.5) / float64(nx)
				v := 1e-4 * rng.NormFloat64() // background field noise
				for _, p := range packets {
					ex := (px - p.cx) / p.sx
					ey := (py - p.cy) / p.sy
					ez := (pz - p.cz) / p.sz
					env := math.Exp(-0.5 * (ex*ex + ey*ey + ez*ez))
					v += p.amp * env * math.Sin(p.k*pz+p.phase)
				}
				f.Set(x, y, z, v*1e11) // V/m-like magnitudes
			}
		}
	}
	return f
}

// RayleighTaylor mimics the density field of a Rayleigh–Taylor instability:
// heavy fluid above light fluid separated by a perturbed interface whose
// "fingers" have begun to roll up. The interface is sharp (high local range)
// while both bulk phases are smooth.
func RayleighTaylor(nx, ny, nz int, seed int64) *field.Field {
	rng := rand.New(rand.NewSource(seed))
	f := field.New(nx, ny, nz)

	// Interface height as a sum of sinusoidal perturbations of (x, y).
	type pert struct {
		kx, ky, phase, amp float64
	}
	perts := make([]pert, 8)
	for i := range perts {
		perts[i] = pert{
			kx:    float64(1+rng.Intn(6)) * 2 * math.Pi,
			ky:    float64(1+rng.Intn(6)) * 2 * math.Pi,
			phase: rng.Float64() * 2 * math.Pi,
			amp:   0.01 + 0.05*rng.Float64()/float64(i+1),
		}
	}
	const rhoHeavy, rhoLight = 3.0, 1.0
	const sharpness = 40.0 // interface thickness control

	for z := 0; z < nz; z++ {
		pz := (float64(z) + 0.5) / float64(nz)
		for y := 0; y < ny; y++ {
			py := (float64(y) + 0.5) / float64(ny)
			for x := 0; x < nx; x++ {
				px := (float64(x) + 0.5) / float64(nx)
				h := 0.5
				for _, p := range perts {
					h += p.amp * math.Sin(p.kx*px+p.phase) * math.Cos(p.ky*py+p.phase*0.7)
				}
				// Roll-up: shear the interface position with height.
				h += 0.03 * math.Sin(6*math.Pi*px) * math.Sin(4*math.Pi*py) * (pz - 0.5)
				t := math.Tanh(sharpness * (pz - h))
				rho := rhoLight + 0.5*(rhoHeavy-rhoLight)*(1+t)
				// Smooth bulk variations.
				rho += 0.02 * math.Sin(2*math.Pi*px) * math.Sin(2*math.Pi*py) * math.Sin(2*math.Pi*pz)
				f.Set(x, y, z, rho)
			}
		}
	}
	return f
}

// HurricaneField mimics a hurricane wind-speed magnitude: an intense vortex
// around a slightly tilted eye with speed decaying outward, plus weak
// background flow. A large fraction of the domain is near zero, matching the
// paper's observation that the Hurricane dataset is relatively sparse.
func HurricaneField(nx, ny, nz int, seed int64) *field.Field {
	rng := rand.New(rand.NewSource(seed))
	f := field.New(nx, ny, nz)

	eyeX0, eyeY0 := 0.45+0.1*rng.Float64(), 0.45+0.1*rng.Float64()
	tiltX, tiltY := 0.1*rng.NormFloat64(), 0.1*rng.NormFloat64()
	const rEye = 0.03  // eye radius (calm)
	const rMax = 0.085 // radius of maximum wind

	for z := 0; z < nz; z++ {
		pz := (float64(z) + 0.5) / float64(nz)
		ex := eyeX0 + tiltX*pz
		ey := eyeY0 + tiltY*pz
		strength := 60 * math.Exp(-2.5*pz) // winds weaken with altitude
		for y := 0; y < ny; y++ {
			py := (float64(y) + 0.5) / float64(ny)
			for x := 0; x < nx; x++ {
				px := (float64(x) + 0.5) / float64(nx)
				dx, dy := px-ex, py-ey
				r := math.Hypot(dx, dy)
				var v float64
				switch {
				case r < rEye:
					v = strength * 0.15 * (r / rEye) // calm eye
				case r < rMax:
					v = strength * (0.15 + 0.85*(r-rEye)/(rMax-rEye))
				default:
					v = strength * math.Exp(-(r-rMax)/0.12)
				}
				// Spiral rain bands.
				theta := math.Atan2(dy, dx)
				v *= 1 + 0.15*math.Sin(3*theta-25*r)
				if v < 0.5 {
					v = 0 // clamp weak winds to zero: sparse background
				}
				f.Set(x, y, z, v)
			}
		}
	}
	return f
}

// S3DFlame mimics a combustion species mass-fraction field: wrinkled flame
// fronts (level sets of a multiscale noise function) with smooth variation on
// either side, characteristic of turbulent combustion DNS output.
func S3DFlame(nx, ny, nz int, seed int64) *field.Field {
	rng := rand.New(rand.NewSource(seed))
	f := field.New(nx, ny, nz)

	// Multiscale "turbulence" as a small sum of random-phase modes at three
	// octaves; the flame front sits where the noise crosses a threshold.
	type mode struct {
		kx, ky, kz, phase, amp float64
	}
	var modes []mode
	for oct := 0; oct < 3; oct++ {
		scale := math.Pow(2, float64(oct))
		for i := 0; i < 5; i++ {
			modes = append(modes, mode{
				kx:    scale * float64(1+rng.Intn(3)) * 2 * math.Pi,
				ky:    scale * float64(1+rng.Intn(3)) * 2 * math.Pi,
				kz:    scale * float64(1+rng.Intn(3)) * 2 * math.Pi,
				phase: rng.Float64() * 2 * math.Pi,
				amp:   0.5 / scale,
			})
		}
	}

	for z := 0; z < nz; z++ {
		pz := (float64(z) + 0.5) / float64(nz)
		for y := 0; y < ny; y++ {
			py := (float64(y) + 0.5) / float64(ny)
			for x := 0; x < nx; x++ {
				px := (float64(x) + 0.5) / float64(nx)
				n := 0.0
				for _, m := range modes {
					n += m.amp * math.Sin(m.kx*px+m.phase) * math.Cos(m.ky*py+0.5*m.phase) * math.Sin(m.kz*pz+1.3*m.phase)
				}
				// Progress variable: burnt (≈1) on one side of the wrinkled
				// front, unburnt (≈0) on the other, smooth transition.
				front := px - 0.5 + 0.25*n
				c := 0.5 * (1 + math.Tanh(12*front))
				// Species mass fraction peaks inside the flame brush.
				yk := c * (1 - c) * 4
				f.Set(x, y, z, 0.02+0.23*yk+0.01*n)
			}
		}
	}
	return f
}
