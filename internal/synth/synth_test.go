package synth

import (
	"math"
	"testing"
)

func TestGenerateAllKinds(t *testing.T) {
	for _, kind := range All {
		f := Generate(kind, 16, 1)
		if f.Nx != 16 || f.Ny != 16 || f.Nz != 16 {
			t.Fatalf("%s: wrong shape %v", kind, f)
		}
		for i, v := range f.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: non-finite sample at %d: %v", kind, i, v)
			}
		}
		if f.ValueRange() == 0 {
			t.Fatalf("%s: constant field", kind)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, kind := range All {
		a := Generate(kind, 12, 42)
		b := Generate(kind, 12, 42)
		if !a.Equal(b) {
			t.Fatalf("%s: not deterministic for same seed", kind)
		}
		c := Generate(kind, 12, 43)
		if a.Equal(c) {
			t.Fatalf("%s: identical output for different seeds", kind)
		}
	}
}

func TestGenerateDims(t *testing.T) {
	f := GenerateDims(WarpX, 8, 12, 20, 3)
	if f.Nx != 8 || f.Ny != 12 || f.Nz != 20 {
		t.Fatalf("wrong shape %v", f)
	}
}

func TestGenerateUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown dataset")
		}
	}()
	Generate(Dataset("bogus"), 8, 1)
}

func TestNyxPositiveWithHalos(t *testing.T) {
	f := NyxDensity(32, 32, 32, 5)
	min, max := f.Range()
	if min <= 0 {
		t.Fatalf("Nyx density must be positive, min=%g", min)
	}
	// Halos should produce strong overdensity: max well above the mean.
	if max < 5*f.Mean() {
		t.Fatalf("Nyx lacks overdense halos: max=%g mean=%g", max, f.Mean())
	}
}

func TestWarpXOscillatory(t *testing.T) {
	f := WarpXEz(32, 32, 32, 5)
	min, max := f.Range()
	if min >= 0 || max <= 0 {
		t.Fatalf("WarpX Ez should oscillate around zero: [%g,%g]", min, max)
	}
	// Mean should be small relative to the amplitude.
	if math.Abs(f.Mean()) > 0.05*max {
		t.Fatalf("WarpX mean %g too large vs max %g", f.Mean(), max)
	}
}

func TestRTTwoPhases(t *testing.T) {
	f := RayleighTaylor(32, 32, 32, 5)
	// Bottom should be light (≈1), top heavy (≈3).
	bottom := f.At(16, 16, 1)
	top := f.At(16, 16, 30)
	if bottom > 1.5 || top < 2.5 {
		t.Fatalf("RT phases wrong: bottom=%g top=%g", bottom, top)
	}
}

func TestHurricaneSparse(t *testing.T) {
	f := HurricaneField(32, 32, 32, 5)
	zeros := 0
	for _, v := range f.Data {
		if v == 0 {
			zeros++
		}
		if v < 0 {
			t.Fatalf("negative wind speed %g", v)
		}
	}
	// Paper: Hurricane has "numerous zero points".
	if frac := float64(zeros) / float64(f.Len()); frac < 0.15 {
		t.Fatalf("Hurricane not sparse enough: %.0f%% zeros", frac*100)
	}
}

func TestS3DBounded(t *testing.T) {
	f := S3DFlame(32, 32, 32, 5)
	min, max := f.Range()
	if min < -0.1 || max > 0.5 {
		t.Fatalf("S3D mass fraction out of plausible range: [%g,%g]", min, max)
	}
}
