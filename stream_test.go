package repro

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/synth"
)

// TestCompressToMatchesResultBlob locks the public streaming API to the
// in-memory path: same options, same bytes.
func TestCompressToMatchesResultBlob(t *testing.T) {
	f := synth.Generate(synth.Nyx, 32, 42)
	opt := Options{RelEB: 1e-3}
	res, err := CompressUniform(f, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	wr, err := CompressTo(f, opt, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), res.Blob) {
		t.Fatalf("CompressTo wrote %d bytes differing from Result.Blob (%d bytes)", buf.Len(), len(res.Blob))
	}
	if wr.Bytes != int64(len(res.Blob)) || wr.CompressionRatio != res.CompressionRatio {
		t.Fatalf("WriteResult %+v inconsistent with Result (CR %v, %d bytes)",
			wr, res.CompressionRatio, len(res.Blob))
	}
}

// TestCompressToFileServesRandomAccess writes a container atomically and
// reads a level back through the random-access reader.
func TestCompressToFileServesRandomAccess(t *testing.T) {
	f := synth.Generate(synth.Nyx, 32, 42)
	path := filepath.Join(t.TempDir(), "nyx.mrw")
	wr, err := CompressToFile(f, Options{RelEB: 1e-3}, path)
	if err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != wr.Bytes {
		t.Fatalf("file is %d bytes, WriteResult says %d", st.Size(), wr.Bytes)
	}
	r, err := OpenContainerFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.FellBack() {
		t.Fatal("streamed container opened via the fallback scan (missing footer?)")
	}
	coarse, err := r.ReadLevel(r.NumLevels() - 1)
	if err != nil {
		t.Fatal(err)
	}
	if coarse.Len() == 0 {
		t.Fatal("empty coarsest level")
	}
}
