// Command mrbench regenerates the paper's tables and figures.
//
// Usage:
//
//	mrbench -list
//	mrbench -exp fig15 [-size 64] [-seed 42] [-out dir] [-workers N]
//	mrbench -exp all
//
// Each experiment prints tab-separated rows matching the corresponding
// table/figure of the paper (see DESIGN.md §4 for the index and
// EXPERIMENTS.md for paper-vs-measured numbers).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benchfmt"
	"repro/internal/experiments"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments")
		exp     = flag.String("exp", "", "experiment id to run, or 'all'")
		size    = flag.Int("size", 64, "fine-grid edge (multiple of 16; power of two for spectra)")
		seed    = flag.Int64("seed", 42, "synthetic-data seed")
		out     = flag.String("out", "", "directory for rendered PNG artifacts (optional)")
		workers = flag.Int("workers", 0, "concurrent compression workers (0 = all cores, 1 = serial)")
		storeBE = flag.String("store", "", "storage backend for serving experiments: file (default), mem, or http (in-process range-request origin)")
		jsonOut = flag.String("json", "", "write machine-readable results to this file (see -list for experiments supporting it)")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-18s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun with -exp <id> or -exp all")
		}
		return
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}
	cfg := experiments.Config{Size: *size, Seed: *seed, OutDir: *out, Workers: *workers, Store: *storeBE}

	if *jsonOut != "" {
		je, ok := experiments.JSONByID(*exp)
		if !ok {
			fatal(fmt.Errorf("-json is supported with -exp %v (got %q)", experiments.JSONIDs(), *exp))
		}
		// Create the output file up front so a bad path fails before the
		// multi-second benchmark run, not after.
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		rep, err := je.Run(cfg)
		if err != nil {
			fatal(err)
		}
		je.WriteTSV(os.Stdout, rep)
		if err := benchfmt.Write(f, rep); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mrbench: wrote %s\n", *jsonOut)
		return
	}

	if *exp == "all" {
		for _, e := range experiments.All() {
			if err := e.Run(os.Stdout, cfg); err != nil {
				fatal(fmt.Errorf("%s: %w", e.ID, err))
			}
		}
		return
	}
	e, ok := experiments.ByID(*exp)
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q (use -list)", *exp))
	}
	if err := e.Run(os.Stdout, cfg); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mrbench:", err)
	os.Exit(1)
}
