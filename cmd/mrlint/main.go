// Command mrlint runs the repo's custom static analyzers (see
// internal/lint) over the packages matched by the given go-list patterns.
//
// Usage:
//
//	mrlint [-list] [packages]
//
// With no patterns it analyzes ./.... It prints one finding per line in the
// usual file:line:col: [analyzer] message format and exits non-zero if any
// finding survives the //lint:ignore suppression filter. -list prints the
// registered analyzers and their invariants instead of running.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("mrlint/%s\n\t%s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := lint.Run(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mrlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
