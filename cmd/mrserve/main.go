// Command mrserve is a progressive multi-resolution serving daemon: it
// serves a directory of compressed .mrw containers over HTTP, decoding only
// the streams each request needs via the container block index, with all
// decoded bricks shared in one byte-budgeted LRU cache.
//
//	mrserve -dir /data/fields -addr :8080 [-cache-mb 256] [-cache-shards 16]
//
// Endpoints:
//
//	GET /v1/fields                          list served fields
//	GET /v1/field/{id}/meta                 dims, levels, per-level sizes
//	GET /v1/field/{id}/level/{L}            one resolution level (binary raw
//	                                        field; ?format=json for JSON)
//	GET /v1/field/{id}/slice?axis=z&k=16&level=0
//	                                        one 2D cross-section
//	GET /healthz                            liveness
//	GET /metrics                            Prometheus text: request/latency
//	                                        counters, cache hits/misses,
//	                                        backend decodes
//
// Binary responses use the same raw field format as mrcompress (24-byte
// little-endian dims header + float64 samples) and carry X-Mrw-Nx/Ny/Nz
// headers. A client wanting a quick look fetches the coarsest level first
// and refines on demand — the server never decodes more than each request
// asks for.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"
)

func main() {
	var (
		dir     = flag.String("dir", ".", "directory of .mrw containers to serve")
		addr    = flag.String("addr", ":8080", "listen address")
		cacheMB = flag.Int64("cache-mb", 256, "brick cache budget in MiB (0 disables caching)")
		shards  = flag.Int("cache-shards", 16, "brick cache shard count")
	)
	flag.Parse()

	s, err := newServer(*dir, *cacheMB<<20, *shards)
	if err != nil {
		fatal(err)
	}
	ids, err := s.fieldIDs()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("mrserve: serving %d field(s) from %s on %s\n", len(ids), *dir, *addr)
	srv := &http.Server{
		Addr:         *addr,
		Handler:      s.handler(),
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 5 * time.Minute, // large fine-level payloads
	}
	if err := srv.ListenAndServe(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mrserve:", err)
	os.Exit(1)
}
