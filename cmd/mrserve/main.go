// Command mrserve is a progressive multi-resolution serving daemon: it
// serves a directory of compressed .mrw containers over HTTP, decoding only
// the streams each request needs via the container block index, with all
// decoded bricks shared in one byte-budgeted LRU cache.
//
//	mrserve -dir /data/fields -addr :8080 [-cache-mb 256] [-cache-shards 16]
//
// Endpoints:
//
//	GET /v1/fields                          list served fields
//	GET /v1/field/{id}/meta                 dims, levels, per-level sizes
//	GET /v1/field/{id}/level/{L}            one resolution level (binary raw
//	                                        field; ?format=json for JSON)
//	GET /v1/field/{id}/slice?axis=z&k=16&level=0
//	                                        one 2D cross-section
//	PUT /v1/field/{id}                      ingest a raw field: compress it
//	                                        (streaming, memory bounded by one
//	                                        worker wave) and atomically
//	                                        install it as {id}.mrw
//	                                        [?releb=|eb=|compressor=|
//	                                        roiblock=|roifrac=]
//	GET /healthz                            liveness
//	GET /metrics                            Prometheus text: request/latency
//	                                        counters, cache hits/misses,
//	                                        backend decodes
//
// Binary responses (and the PUT request body) use the same raw field format
// as mrcompress (24-byte little-endian dims header + float64 samples);
// responses carry X-Mrw-Nx/Ny/Nz headers. A client wanting a quick look
// fetches the coarsest level first and refines on demand — the server never
// decodes more than each request asks for.
//
// Replacing a served container — by PUT or by an external atomic copy —
// takes effect on the next request: every lookup stat-revalidates the open
// reader against the file on disk, and a replaced field's reader, listing
// summary, and cached bricks are dropped together.
//
// Corruption degrades instead of failing: every stream read is verified
// against the container's per-stream checksum, a corrupt level is
// quarantined for -quarantine-ttl, and level/slice requests fall back to
// the coarsest intact level with an X-Degraded header. Transient I/O faults
// are retried; exhausted retries answer 503. /healthz and /metrics expose
// per-field corruption, quarantine, and retry counters. Stale write
// temporaries (crash residue from an interrupted ingest) are swept at
// startup and every -sweep-interval.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/faultio"
	"repro/internal/reader"
)

func main() {
	var (
		dir         = flag.String("dir", ".", "directory of .mrw containers to serve")
		addr        = flag.String("addr", ":8080", "listen address")
		cacheMB     = flag.Int64("cache-mb", 256, "brick cache budget in MiB (0 disables caching)")
		shards      = flag.Int("cache-shards", 16, "brick cache shard count")
		maxIngestMB = flag.Int64("max-ingest-mb", 1024, "largest raw field accepted by PUT ingest, in MiB")
		quarTTL     = flag.Duration("quarantine-ttl", defaultQuarantineTTL, "how long a corrupt level is skipped before being probed again")
		sweepEvery  = flag.Duration("sweep-interval", 10*time.Minute, "period between crash-residue sweeps of the data directory (0 disables)")
		faultSpec   = flag.String("fault-inject", "", `inject deterministic read faults for resilience drills, e.g. "seed=7,transient=0.05,maxfaults=100" (testing only)`)
	)
	flag.Parse()

	s, err := newServer(*dir, *cacheMB<<20, *maxIngestMB<<20, *shards)
	if err != nil {
		fatal(err)
	}
	s.quar.ttl = *quarTTL
	if *faultSpec != "" {
		plan, err := parseFaultPlan(*faultSpec)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mrserve: WARNING: injecting faults into every container read (%s)\n", *faultSpec)
		s.readerOpts = append(s.readerOpts, reader.WithSourceWrap(func(src io.ReaderAt) io.ReaderAt {
			return faultio.NewFaultReaderAt(src, plan)
		}))
	}
	s.sweepTemps()
	if *sweepEvery > 0 {
		go s.sweepLoop(*sweepEvery, make(chan struct{}))
	}
	ids, err := s.fieldIDs()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("mrserve: serving %d field(s) from %s on %s\n", len(ids), *dir, *addr)
	srv := &http.Server{
		Addr:    *addr,
		Handler: s.handler(),
		// Slow-header clients and idle keep-alive connections are bounded
		// separately from body transfer: ingest uploads and fine-level
		// downloads may legitimately take minutes, a header may not.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       10 * time.Minute, // large ingest bodies
		WriteTimeout:      5 * time.Minute,  // large fine-level payloads
		IdleTimeout:       2 * time.Minute,
	}
	if err := srv.ListenAndServe(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mrserve:", err)
	os.Exit(1)
}
