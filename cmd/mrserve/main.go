// Command mrserve is a progressive multi-resolution serving daemon: it
// serves a store of compressed .mrw containers over HTTP, decoding only
// the streams each request needs via the container block index, with all
// decoded bricks shared in one byte-budgeted LRU cache.
//
//	mrserve -dir /data/fields -addr :8080 [-cache-mb 256] [-cache-shards 16]
//	mrserve -store http://origin/fields/ -revalidate-every 30s \
//	        -disk-cache-dir /var/cache/mrserve -disk-cache-mb 2048
//
// Containers come from a pluggable storage backend: -dir (or -store
// file://…) serves a local directory, -store http://… reads a remote origin
// with range requests (ingest and listing answer 501 there), and -store
// mem:// starts empty and is populated by PUT ingest. -disk-cache-dir adds
// a disk spill tier under the in-memory brick cache, so bricks evicted from
// RAM reload from local files instead of re-fetching and re-decoding.
//
// Endpoints:
//
//	GET /v1/fields                          list served fields
//	GET /v1/field/{id}/meta                 dims, levels, per-level sizes
//	GET /v1/field/{id}/level/{L}            one resolution level (binary raw
//	                                        field; ?format=json for JSON)
//	GET /v1/field/{id}/slice?axis=z&k=16&level=0
//	                                        one 2D cross-section
//	PUT /v1/field/{id}                      ingest a raw field: compress it
//	                                        (streaming, memory bounded by one
//	                                        worker wave) and atomically
//	                                        install it as {id}.mrw
//	                                        [?releb=|eb=|compressor=|
//	                                        roiblock=|roifrac=]
//	GET /healthz                            liveness
//	GET /metrics                            Prometheus text: request/latency
//	                                        counters and histograms, cache
//	                                        hits/misses, backend decodes
//	GET /debug/traces                       recent request traces (JSON)
//
// Binary responses (and the PUT request body) use the same raw field format
// as mrcompress (24-byte little-endian dims header + float64 samples);
// responses carry X-Mrw-Nx/Ny/Nz headers. A client wanting a quick look
// fetches the coarsest level first and refines on demand — the server never
// decodes more than each request asks for.
//
// Replacing a served container — by PUT or by an external atomic copy —
// takes effect on the next request: every lookup stat-revalidates the open
// reader against the file on disk, and a replaced field's reader, listing
// summary, and cached bricks are dropped together.
//
// Corruption degrades instead of failing: every stream read is verified
// against the container's per-stream checksum, a corrupt level is
// quarantined for -quarantine-ttl, and level/slice requests fall back to
// the coarsest intact level with an X-Degraded header. Transient I/O faults
// are retried; exhausted retries answer 503. /healthz and /metrics expose
// per-field corruption, quarantine, and retry counters. Stale write
// temporaries (crash residue from an interrupted ingest) are swept at
// startup and every -sweep-interval.
//
// Observability: every request runs under a trace identified by its
// X-Request-Id header (accepted from the client or generated, always echoed
// back); recent traces — with per-span serve/read/decode timings — are at
// GET /debug/traces, requests slower than -trace-slow are logged with their
// span breakdown, and -log-sample emits a structured access-log line per
// sampled request. /metrics serves fixed-bucket latency histograms per
// endpoint and per pipeline stage alongside the original counters. An
// opt-in -debug-addr listener exposes net/http/pprof (with lock/block
// profiling behind -mutex-profile-fraction and -block-profile-rate) plus
// the same /debug/traces.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/faultio"
	"repro/internal/reader"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	var (
		dir         = flag.String("dir", ".", "directory of .mrw containers to serve")
		storeURL    = flag.String("store", "", "storage backend URL (file:///dir, http://origin/prefix/, mem://); overrides -dir")
		reval       = flag.Duration("revalidate-every", 0, "trust an open container this long between identity probes (0 = probe every lookup; recommended > 0 for http stores)")
		diskDir     = flag.String("disk-cache-dir", "", "directory for the brick cache's disk spill tier (empty disables)")
		diskMB      = flag.Int64("disk-cache-mb", 1024, "disk spill tier budget in MiB")
		rawOrigin   = flag.String("raw-origin", "", `also serve a directory of raw container files over HTTP as "ADDR=DIR" (a range-capable origin with strong ETags, for -store http:// setups and smoke tests)`)
		addr        = flag.String("addr", ":8080", "listen address")
		cacheMB     = flag.Int64("cache-mb", 256, "brick cache budget in MiB (0 disables caching)")
		shards      = flag.Int("cache-shards", 16, "brick cache shard count")
		maxIngestMB = flag.Int64("max-ingest-mb", 1024, "largest raw field accepted by PUT ingest, in MiB")
		quarTTL     = flag.Duration("quarantine-ttl", serve.DefaultQuarantineTTL, "how long a corrupt level is skipped before being probed again")
		sweepEvery  = flag.Duration("sweep-interval", 10*time.Minute, "period between crash-residue sweeps of the data directory (0 disables)")
		faultSpec   = flag.String("fault-inject", "", `inject deterministic read faults for resilience drills, e.g. "seed=7,transient=0.05,maxfaults=100" (testing only)`)

		traceRing = flag.Int("trace-ring", 0, "recent request traces retained for /debug/traces (0 = default)")
		traceSlow = flag.Duration("trace-slow", 0, "log any request at least this slow with its span breakdown (0 disables)")
		logSample = flag.Int("log-sample", 0, "emit one access-log line per N requests (1 = every request, 0 disables)")
		debugAddr = flag.String("debug-addr", "", "optional second listener for net/http/pprof and /debug/traces (e.g. localhost:6060)")
		blockRate = flag.Int("block-profile-rate", 0, "runtime.SetBlockProfileRate argument for the pprof block profile (0 disables)")
		mutexFrac = flag.Int("mutex-profile-fraction", 0, "runtime.SetMutexProfileFraction argument for the pprof mutex profile (0 disables)")
	)
	flag.Parse()

	if *rawOrigin != "" {
		oaddr, odir, ok := strings.Cut(*rawOrigin, "=")
		if !ok || oaddr == "" || odir == "" {
			fatal(fmt.Errorf(`-raw-origin wants "ADDR=DIR", got %q`, *rawOrigin))
		}
		if err := startRawOrigin(oaddr, odir); err != nil {
			fatal(err)
		}
	}
	cfg := serve.Config{
		Dir:             *dir,
		RevalidateEvery: *reval,
		DiskCacheDir:    *diskDir,
		DiskCacheBytes:  *diskMB << 20,
		CacheBytes:      *cacheMB << 20,
		MaxIngestBytes:  *maxIngestMB << 20,
		CacheShards:     *shards,
		QuarantineTTL:   *quarTTL,
		TraceRing:       *traceRing,
		TraceSlow:       *traceSlow,
		LogSample:       *logSample,
		LogWriter:       os.Stderr,
	}
	if *storeURL != "" {
		st, err := store.Open(*storeURL)
		if err != nil {
			fatal(err)
		}
		cfg.Store = st
	}
	if *faultSpec != "" {
		plan, err := serve.ParseFaultPlan(*faultSpec)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mrserve: WARNING: injecting faults into every container read (%s)\n", *faultSpec)
		cfg.ReaderOptions = append(cfg.ReaderOptions, reader.WithSourceWrap(func(src io.ReaderAt) io.ReaderAt {
			return faultio.NewFaultReaderAt(src, plan)
		}))
	}
	s, err := serve.New(cfg)
	if err != nil {
		fatal(err)
	}
	s.SweepTemps()
	if *sweepEvery > 0 {
		go s.SweepLoop(*sweepEvery, make(chan struct{}))
	}
	if *blockRate > 0 {
		runtime.SetBlockProfileRate(*blockRate)
	}
	if *mutexFrac > 0 {
		runtime.SetMutexProfileFraction(*mutexFrac)
	}
	if *debugAddr != "" {
		go serveDebug(*debugAddr, s)
	}
	from := *dir
	if *storeURL != "" {
		from = *storeURL
	}
	if ids, err := s.FieldIDs(); err != nil {
		if !errors.Is(err, store.ErrUnsupported) {
			fatal(err)
		}
		// A plain HTTP origin cannot enumerate; fields are opened on demand.
		fmt.Printf("mrserve: serving %s (listing unsupported) on %s\n", from, *addr)
	} else {
		fmt.Printf("mrserve: serving %d field(s) from %s on %s\n", len(ids), from, *addr)
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: s.Handler(),
		// Slow-header clients and idle keep-alive connections are bounded
		// separately from body transfer: ingest uploads and fine-level
		// downloads may legitimately take minutes, a header may not.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       10 * time.Minute, // large ingest bodies
		WriteTimeout:      5 * time.Minute,  // large fine-level payloads
		IdleTimeout:       2 * time.Minute,
	}
	if err := srv.ListenAndServe(); err != nil {
		fatal(err)
	}
}

// startRawOrigin serves dir's files statically on addr — a minimal
// range-capable origin with strong ETags (size + mtime), which is exactly
// what the HTTP store backend wants to talk to: ranged GETs for positioned
// reads, HEAD + ETag for revalidation. The listener is bound synchronously
// so the origin is reachable before the serving store first opens an
// object; requests are then served from a goroutine.
func startRawOrigin(addr, dir string) error {
	if st, err := os.Stat(dir); err != nil {
		return err
	} else if !st.IsDir() {
		return fmt.Errorf("raw origin %s is not a directory", dir)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("raw origin listener: %w", err)
	}
	fmt.Fprintf(os.Stderr, "mrserve: raw origin for %s on %s\n", dir, addr)
	go func() {
		srv := &http.Server{Handler: store.OriginHandler(dir), ReadHeaderTimeout: 10 * time.Second}
		if err := srv.Serve(ln); err != nil {
			fmt.Fprintln(os.Stderr, "mrserve: raw origin:", err)
		}
	}()
	return nil
}

// serveDebug runs the opt-in debug listener: pprof endpoints plus the
// trace ring. Kept off the serving mux so profiling can be bound to
// localhost while the data plane is public.
func serveDebug(addr string, s *serve.Server) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/traces", s.TracesHandler())
	fmt.Fprintf(os.Stderr, "mrserve: debug listener (pprof, traces) on %s\n", addr)
	srv := &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	if err := srv.ListenAndServe(); err != nil {
		fmt.Fprintln(os.Stderr, "mrserve: debug listener:", err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mrserve:", err)
	os.Exit(1)
}
