// Command mrcompress compresses and decompresses scalar fields with the
// multi-resolution workflow.
//
// Compress a raw field file (24-byte dims header + float64 samples; see
// internal/field) into a workflow container. The container streams to the
// output file as compression waves complete and is installed by atomic
// rename, so memory stays bounded by the input plus one worker wave and no
// reader ever sees a partial file:
//
//	mrcompress -c -i field.bin -o field.mrw -releb 1e-3 [-compressor sz3]
//	           [-levelcodecs "0:sz3,2:flate"] [-entropy-lanes auto]
//	           [-roiblock 16] [-roifrac 0.5] [-workers N]
//
// The -compressor name must be registered in the codec registry
// (internal/codec); -levelcodecs overrides the codec per resolution level
// (0 = finest), e.g. coarse preview levels lossless while fine levels stay
// error-bounded. -entropy-lanes opts the huffman-based backends into the
// interleaved multi-lane entropy format, whose code streams decode their
// lanes in parallel under -workers.
//
// With -quality (or -post, which needs the full round trip anyway) the
// in-memory path runs instead and PSNR/SSIM against the input are printed:
//
//	mrcompress -c -i field.bin -o field.mrw -releb 1e-3 -quality
//
// Decompress a container back to a full-resolution raw field (a container
// URL downloads the whole blob — every stream is needed anyway):
//
//	mrcompress -d -i field.mrw -o recon.bin
//
// Partially decode via the container's block index — only the needed
// streams are read and decoded, so extracting the coarsest level of a
// large container touches a few kilobytes. The input may be a local path
// or a container URL (http://, https://, mem://, file://); remote
// containers are read with range requests, so the same partial-decode
// economy holds over the network:
//
//	mrcompress -d -i field.mrw -o coarse.bin -level 2
//	mrcompress -d -i field.mrw -o box.bin -level 0 -box 3
//	mrcompress -d -i http://origin:9100/field.mrw -o coarse.bin -level 2
//
// Scrub a container for corruption without decompressing it to disk — each
// stream's payload is checked against the index's per-stream checksum
// (containers written before checksums are decode-verified instead). Exits
// nonzero when any stream fails, so it slots into cron jobs and CI:
//
//	mrcompress -verify -i field.mrw
//
// Generate a synthetic input for experimentation:
//
//	mrcompress -gen nyx -size 64 -o nyx.bin
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
	"repro/internal/field"
	"repro/internal/store"
	"repro/internal/synth"
)

func main() {
	var (
		comp    = flag.Bool("c", false, "compress")
		dec     = flag.Bool("d", false, "decompress")
		gen     = flag.String("gen", "", "generate a synthetic dataset (nyx|warpx|rt|hurricane|s3d)")
		verify  = flag.Bool("verify", false, "scrub a container's streams for corruption (with -i)")
		in      = flag.String("i", "", "input file")
		out     = flag.String("o", "", "output file")
		releb   = flag.Float64("releb", 1e-3, "relative error bound (fraction of value range)")
		abseb   = flag.Float64("eb", 0, "absolute error bound (overrides -releb)")
		backend = flag.String("compressor", "sz3", "backend codec: "+strings.Join(repro.Codecs(), "|"))
		lvlspec = flag.String("levelcodecs", "", `per-level codec overrides, e.g. "0:sz3,2:flate" (level 0 = finest)`)
		lanes   = flag.String("entropy-lanes", "", `interleaved entropy lanes per code stream: "auto" or a power of two ≤ 64 (default single-lane)`)
		roiB    = flag.Int("roiblock", 16, "ROI block size (power of two > 4)")
		roiFrac = flag.Float64("roifrac", 0.5, "fraction of blocks kept at full resolution")
		post    = flag.Bool("post", false, "enable error-bounded post-processing")
		quality = flag.Bool("quality", false, "with -c: decompress after compressing and report PSNR/SSIM (holds the container in memory)")
		size    = flag.Int("size", 64, "edge size for -gen")
		seed    = flag.Int64("seed", 42, "seed for -gen")
		workers = flag.Int("workers", 0, "concurrent compression workers (0 = all cores, 1 = serial)")
		level   = flag.Int("level", -1, "with -d: decode only this level (0 = finest) via the container index")
		box     = flag.Int("box", -1, "with -d -level: decode only this TAC box of the level")
	)
	flag.Parse()

	switch {
	case *gen != "":
		requireOut(*out)
		f := synth.Generate(synth.Dataset(*gen), *size, *seed)
		if err := f.Save(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%dx%dx%d, %d bytes raw)\n", *out, f.Nx, f.Ny, f.Nz, f.Bytes())

	case *comp:
		requireIn(*in)
		requireOut(*out)
		// Validate codec names up front through the registry, before the
		// (possibly large) input is loaded.
		cname, err := repro.ParseCodec(*backend)
		if err != nil {
			fatal(err)
		}
		lvlCodecs, err := repro.ParseLevelCodecs(*lvlspec)
		if err != nil {
			fatal(err)
		}
		entropyLanes, err := repro.ParseEntropyLanes(*lanes)
		if err != nil {
			fatal(err)
		}
		f, err := field.Load(*in)
		if err != nil {
			fatal(err)
		}
		opt := repro.Options{
			Compressor:   cname,
			LevelCodecs:  lvlCodecs,
			EntropyLanes: entropyLanes,
			ROIBlockB:    *roiB,
			ROITopFrac:   *roiFrac,
			PostProcess:  *post,
			Workers:      *workers,
		}
		if *abseb > 0 {
			opt.EB = *abseb
		} else {
			opt.RelEB = *releb
		}
		if *post || *quality {
			// Post-processing and quality metrics need the decompressed
			// reconstruction, so run the in-memory round-trip path.
			res, err := repro.CompressUniform(f, opt)
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*out, res.Blob, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("compressed %s -> %s\n", *in, *out)
			fmt.Printf("  payload CR %.1f (vs uniform raw: %.1f)\n",
				res.CompressionRatio, float64(f.Bytes())/float64(len(res.Blob)))
			fmt.Printf("  PSNR %.2f dB, SSIM %.4f\n", res.PSNR, res.SSIM)
			break
		}
		res, err := repro.CompressToFile(f, opt, *out)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("compressed %s -> %s (streaming, %d bytes)\n", *in, *out, res.Bytes)
		fmt.Printf("  payload CR %.1f (vs uniform raw: %.1f)\n",
			res.CompressionRatio, float64(f.Bytes())/float64(res.Bytes))
		fmt.Printf("  peak compressed buffer %d bytes (-quality for PSNR/SSIM)\n", res.MaxBufferedBytes)

	case *verify:
		requireIn(*in)
		res, err := repro.VerifyFile(context.Background(), *in)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d streams (%d checksum-verified, %d decode-verified)\n",
			*in, res.Streams, res.Checked, res.Decoded)
		for _, f := range res.Faults {
			fmt.Fprintf(os.Stderr, "  FAULT %v\n", f)
		}
		if !res.OK() {
			fatal(fmt.Errorf("%d of %d streams corrupt", len(res.Faults), res.Streams))
		}
		fmt.Println("  ok")

	case *dec && *level >= 0:
		requireIn(*in)
		requireOut(*out)
		r, err := repro.OpenContainerURL(*in)
		if err != nil {
			fatal(err)
		}
		defer r.Close()
		var rec *repro.Field
		if *box >= 0 {
			rec, _, err = r.ReadBox(*level, *box)
		} else {
			rec, err = r.ReadLevel(*level)
		}
		if err != nil {
			fatal(err)
		}
		if err := rec.Save(*out); err != nil {
			fatal(err)
		}
		st := r.Stats()
		fmt.Printf("decoded level %d", *level)
		if *box >= 0 {
			fmt.Printf(" box %d", *box)
		}
		fmt.Printf(" of %s -> %s (%dx%dx%d)\n", *in, *out, rec.Nx, rec.Ny, rec.Nz)
		fmt.Printf("  %d of %d streams decoded, %d compressed bytes read\n",
			st.BackendDecodes, len(r.Index().Streams), st.BytesRead)

	case *dec:
		requireIn(*in)
		requireOut(*out)
		blob, err := readContainer(*in)
		if err != nil {
			fatal(err)
		}
		h, err := repro.DecompressWorkers(blob, *workers)
		if err != nil {
			fatal(err)
		}
		rec := h.Flatten()
		if err := rec.Save(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("decompressed %s -> %s (%dx%dx%d)\n", *in, *out, rec.Nx, rec.Ny, rec.Nz)

	default:
		flag.Usage()
		os.Exit(2)
	}
}

// readContainer fetches a whole container blob from a local path or any
// storage-backend URL (full decode needs every stream, so a remote
// container is one sequential download rather than ranged reads).
func readContainer(in string) ([]byte, error) {
	if !strings.Contains(in, "://") {
		return os.ReadFile(in)
	}
	st, key, err := store.OpenObjectURL(in)
	if err != nil {
		return nil, err
	}
	h, err := st.Open(context.Background(), key)
	if err != nil {
		return nil, err
	}
	defer h.Close()
	blob := make([]byte, h.Size())
	if _, err := h.ReadAt(blob, 0); err != nil && err != io.EOF {
		return nil, err
	}
	return blob, nil
}

func requireIn(in string) {
	if in == "" {
		fatal(fmt.Errorf("missing -i input file"))
	}
}

func requireOut(out string) {
	if out == "" {
		fatal(fmt.Errorf("missing -o output file"))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mrcompress:", err)
	os.Exit(1)
}
