// Command mrviz renders scalar fields and compression-uncertainty overlays
// to PNG.
//
//	mrviz -i field.bin -o slice.png [-z -1] [-cmap viridis|coolwarm|gray] [-log]
//	mrviz -i field.bin -o overlay.png -uncertainty -iso 12.5 -stddev 0.8
//
// The uncertainty mode runs probabilistic marching cubes with a Gaussian
// error model (mean 0, the given standard deviation) and blends the
// isosurface-crossing probability in red over a grayscale slice (Fig. 14).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/field"
	"repro/internal/render"
	"repro/internal/uncertainty"
)

func main() {
	var (
		in     = flag.String("i", "", "input raw field file")
		out    = flag.String("o", "", "output PNG")
		z      = flag.Int("z", -1, "z slice (-1 = middle)")
		cmap   = flag.String("cmap", "viridis", "colormap: viridis|coolwarm|gray")
		logS   = flag.Bool("log", false, "log10 scale")
		unc    = flag.Bool("uncertainty", false, "render isosurface-crossing probability overlay")
		iso    = flag.Float64("iso", 0, "isovalue for -uncertainty")
		stddev = flag.Float64("stddev", 0, "error-model standard deviation for -uncertainty")
		vol    = flag.Bool("volume", false, "volume-render instead of slicing (combine with -uncertainty)")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := field.Load(*in)
	if err != nil {
		fatal(err)
	}
	zi := *z
	if zi < 0 {
		zi = f.Nz / 2
	}
	if zi >= f.Nz {
		fatal(fmt.Errorf("z=%d out of range [0,%d)", zi, f.Nz))
	}

	if *unc {
		if *stddev <= 0 {
			fatal(fmt.Errorf("-uncertainty requires -stddev > 0"))
		}
		probs, err := uncertainty.CrossProbabilities(f, *iso, uncertainty.ErrorModel{StdDev: *stddev})
		if err != nil {
			fatal(err)
		}
		if *vol {
			img, err := render.VolumeWithUncertainty(f, probs, render.VolumeOptions{})
			if err != nil {
				fatal(err)
			}
			if err := render.SavePNG(img, *out); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (uncertainty volume, iso=%g)\n", *out, *iso)
			return
		}
		if zi >= probs.Nz {
			zi = probs.Nz - 1
		}
		img, err := render.UncertaintyOverlay(f, probs, zi)
		if err != nil {
			fatal(err)
		}
		if err := render.SavePNG(img, *out); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (uncertainty overlay, iso=%g, z=%d)\n", *out, *iso, zi)
		return
	}

	if *vol {
		img := render.Volume(f, render.VolumeOptions{})
		if err := render.SavePNG(img, *out); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (volume render)\n", *out)
		return
	}

	var cm render.Colormap
	switch *cmap {
	case "viridis":
		cm = render.Viridis
	case "coolwarm":
		cm = render.CoolWarm
	case "gray":
		cm = render.Gray
	default:
		fatal(fmt.Errorf("unknown colormap %q", *cmap))
	}
	img := render.SliceZ(f, zi, cm)
	if *logS {
		img = render.LogSliceZ(f, zi, cm)
	}
	if err := render.SavePNG(img, *out); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%s, z=%d)\n", *out, *cmap, zi)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mrviz:", err)
	os.Exit(1)
}
