// Package repro is a Go reproduction of "A High-Quality Workflow for
// Multi-Resolution Scientific Data Reduction and Visualization" (Wang et
// al., SC 2024). It exposes the complete workflow of the paper's Fig. 3:
//
//  1. ROI extraction: uniform data → multi-resolution "adaptive" data by
//     block range thresholding (§III), or direct ingestion of AMR data;
//  2. SZ3MR compression: per-level unit-block merging with padding and an
//     adaptive per-interpolation-level error bound for the SZ3 backend
//     (§III-A), plus SZ2/ZFP backends and the AMRIC/TAC/zMesh baseline
//     arrangements;
//  3. Error-bounded adaptive Bézier post-processing of block-wise
//     compression artifacts, with sampled intensity selection (§III-B);
//  4. Uncertainty visualization: probabilistic marching cubes driven by the
//     compression-error distribution estimated from the same samples
//     (§III-C).
//
// The heavy lifting lives in internal packages (internal/core implements the
// pipeline; internal/sz3, internal/sz2, internal/zfp are from-scratch
// stand-ins for the reference compressors); this package is the stable
// entry point used by the examples, commands, and benchmarks.
//
// # Concurrency
//
// The compression and decompression stages run multi-core by default,
// standing in for the paper's OpenMP parallelization: every backend stream
// (one per merged level for the linear/stack/zorder arrangements, one per
// box for TAC) is compressed or decoded by a bounded goroutine pool.
// Options.Workers caps the pool (0 = runtime.GOMAXPROCS(0), 1 = fully
// serial — the paper's "Serial" configurations). The worker count never
// changes the output: containers are byte-identical and reconstructions
// bit-identical for every Workers value, so parallelism is purely a
// throughput knob. Chunked slab parallelism for single uniform fields
// (which *does* trade compression ratio for speed, as §IV-C notes for
// OpenMP SZ2) lives separately in internal/parallelcomp; both are built on
// the shared worker pool in internal/parallel.
//
// # Random access
//
// Containers written by this package (format version 3) end in a
// self-describing block index (internal/index) naming every backend
// stream's level, box, offset, and length. OpenContainer / OpenContainerFile
// return a ContainerReader that seeks directly to the streams a request
// needs and decodes only those:
//
//	r, err := repro.OpenContainerFile("field.mrw")
//	coarse, err := r.ReadLevel(r.NumLevels() - 1) // decodes one stream
//	plane, err := r.ReadSlice(repro.AxisZ, 16, 0) // one stream, or only
//	                                              // intersecting TAC boxes
//
// Reads are backed by a sharded, byte-budgeted LRU brick cache; pass a
// shared NewBrickCache to OpenContainerCached to bound decoded-brick
// memory across many open containers (the mrserve setup). Fields returned
// by Read* methods may be shared with that cache — treat them as
// read-only. Containers from older versions of this package (v1/v2, no
// index) remain readable everywhere: the reader falls back to one
// sequential scan, after which access is equally random. cmd/mrserve
// serves a directory of containers over HTTP on top of this API.
//
// # Streaming writes
//
// The write path has the mirror-image discipline: CompressTo streams the
// container to an io.Writer as compression waves complete (memory bounded
// by one wave of compressed streams, not the container), and
// CompressToFile installs it by atomic rename so concurrent readers never
// observe a partial file. The bytes are identical to Result.Blob for the
// same options. cmd/mrserve's PUT ingest endpoint builds on these.
package repro

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/postproc"
	"repro/internal/reader"
	"repro/internal/roi"
	"repro/internal/store"
	"repro/internal/uncertainty"
)

// Field is a dense 3D scalar field (x fastest, row-major float64).
type Field = field.Field

// Hierarchy is a multi-resolution dataset (levels of blocks, 0 = finest).
type Hierarchy = grid.Hierarchy

// Intensity is the per-dimension post-processing strength a.
type Intensity = postproc.Intensity

// ErrorModel is the per-voxel Gaussian compression-error model.
type ErrorModel = uncertainty.ErrorModel

// NewField allocates a zero field; see field.New.
func NewField(nx, ny, nz int) *Field { return field.New(nx, ny, nz) }

// Compressor names a compression backend. Any name registered in the
// codec registry is valid (see Codecs for the current vocabulary); the
// constants below are the built-ins.
type Compressor string

// Built-in backends.
const (
	SZ3   Compressor = "sz3"   // global interpolation compressor (default)
	SZ2   Compressor = "sz2"   // block-wise Lorenzo/regression compressor
	ZFP   Compressor = "zfp"   // block-wise transform compressor
	Flate Compressor = "flate" // lossless raw+flate passthrough
)

// Arrangement names a unit-block layout for multi-resolution levels.
type Arrangement string

// Supported arrangements (Fig. 6 of the paper).
const (
	Linear   Arrangement = "linear"   // linear merge along z (SZ3MR, baseline)
	Stack    Arrangement = "stack"    // AMRIC-style cubic stacking
	TAC      Arrangement = "tac"      // TAC-style adjacency boxes
	ZOrder1D Arrangement = "zorder1d" // zMesh-style 1D Morton flattening
)

// Options configures the workflow. The zero value plus an error bound gives
// the paper's recommended configuration (SZ3MR with post-processing off).
type Options struct {
	// EB is the absolute error bound. Exactly one of EB / RelEB must be set.
	EB float64
	// RelEB, if nonzero, sets EB = RelEB × value range of the input.
	RelEB float64
	// Compressor selects the backend (default SZ3).
	Compressor Compressor
	// Arrangement selects the layout (default Linear).
	Arrangement Arrangement
	// Pad enables the padding improvement (§III-A improvement 1); it is
	// applied only to linear merges with unit blocks > 4. Default on for
	// SZ3 unless DisablePad.
	DisablePad bool
	// DisableAdaptiveEB turns off the per-level error bound (improvement 2).
	DisableAdaptiveEB bool
	// Alpha/Beta parameterize the adaptive bound (defaults 2.25 / 8).
	Alpha, Beta float64
	// PostProcess enables the error-bounded Bézier post-processing stage.
	PostProcess bool
	// ROIBlockB is the ROI/AMR block size for uniform inputs (default 16).
	ROIBlockB int
	// ROITopFrac is the fraction of blocks kept at full resolution when
	// converting uniform data (default 0.5).
	ROITopFrac float64
	// Uncertainty enables the probabilistic-marching-cubes stage for the
	// isovalue IsoValue.
	Uncertainty bool
	// IsoValue is the isovalue analyzed when Uncertainty is set.
	IsoValue float64
	// Workers bounds the number of goroutines compressing or decoding
	// backend streams concurrently (0 = runtime.GOMAXPROCS(0), 1 = serial).
	// The compressed container is byte-identical for every value.
	Workers int
	// EntropyLanes selects the entropy stage's interleaved lane count for
	// the huffman-based backends: 0 or 1 write the legacy single-lane
	// format (the default), EntropyLanesAuto picks from each stream's
	// size, and an explicit power of two (≤ 64) writes that many lanes per
	// code stream, decodable in parallel under Workers. See
	// ParseEntropyLanes for the flag/query syntax.
	EntropyLanes int
	// LevelCodecs overrides the codec per resolution level (key = level,
	// 0 = finest); levels not named use Compressor. Typical use: coarse
	// levels lossless ("flate"), fine levels error-bounded — see
	// ParseLevelCodecs for the "level:codec" spec syntax CLI flags and
	// query parameters use.
	LevelCodecs map[int]Compressor
}

func (o Options) coreOptions(eb float64) (core.Options, error) {
	co := core.Options{EB: eb, Alpha: o.Alpha, Beta: o.Beta, Workers: o.Workers, EntropyLanes: o.EntropyLanes}
	c, err := lookupCodec(o.Compressor)
	if err != nil {
		return co, err
	}
	co.Compressor = core.Compressor(c.WireID())
	if c.PadAndAdaptiveEB() {
		co.Pad = !o.DisablePad
		co.AdaptiveEB = !o.DisableAdaptiveEB
	}
	for l, name := range o.LevelCodecs {
		lc, err := lookupCodec(name)
		if err != nil {
			return co, fmt.Errorf("level %d: %w", l, err)
		}
		if co.LevelCodecs == nil {
			co.LevelCodecs = make(map[int]core.Compressor, len(o.LevelCodecs))
		}
		co.LevelCodecs[l] = core.Compressor(lc.WireID())
	}
	switch o.Arrangement {
	case "", Linear:
		co.Arrangement = core.ArrangeLinear
	case Stack:
		co.Arrangement = core.ArrangeStack
	case TAC:
		co.Arrangement = core.ArrangeTAC
	case ZOrder1D:
		co.Arrangement = core.ArrangeZOrder1D
	default:
		return co, fmt.Errorf("repro: unknown arrangement %q", o.Arrangement)
	}
	return co, nil
}

// Result is the outcome of a workflow run.
type Result struct {
	// Blob is the self-describing compressed container.
	Blob []byte
	// Hierarchy is the decompressed multi-resolution data (post-processed
	// if requested).
	Hierarchy *Hierarchy
	// Recon is the flattened full-resolution reconstruction.
	Recon *Field
	// CompressionRatio is raw multi-resolution payload bytes / Blob bytes.
	CompressionRatio float64
	// PSNR and SSIM compare Recon against the input (uniform inputs) or the
	// flattened input hierarchy (AMR inputs).
	PSNR, SSIM float64
	// Intensities holds the selected per-level post-processing strengths.
	Intensities []Intensity
	// Model is the estimated compression-error model (when Uncertainty).
	Model ErrorModel
	// CrossProbabilities is the cell-centered isosurface-crossing
	// probability field (when Uncertainty).
	CrossProbabilities *Field
	// Timing breaks down the run.
	Timing Timing
}

// Timing records stage durations (the paper's Tables IV and IX).
type Timing struct {
	ROI         time.Duration // uniform → adaptive conversion
	Preprocess  time.Duration // collect/merge/pad into compression buffers
	SampleModel time.Duration // post-processing sampling + intensity fit
	Compress    time.Duration // backend compression + container encode
	Decompress  time.Duration // decode (includes post-processing if on)
	PostProcess time.Duration // post-processing share of decode
}

// CompressUniform converts a uniform field to adaptive multi-resolution data
// via ROI extraction and runs the workflow on it.
func CompressUniform(f *Field, opt Options) (*Result, error) {
	t0 := time.Now()
	h, err := roi.Convert(f, roi.Options{BlockB: opt.ROIBlockB, TopFrac: opt.ROITopFrac})
	if err != nil {
		return nil, err
	}
	troi := time.Since(t0)
	res, err := CompressAMR(h, opt)
	if err != nil {
		return nil, err
	}
	res.Timing.ROI = troi
	// Quality against the original uniform data.
	res.PSNR = metrics.PSNR(f, res.Recon)
	res.SSIM = metrics.SSIMCentral(f, res.Recon)
	if opt.Uncertainty {
		if err := res.analyzeUncertainty(opt); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// resolveEB turns the EB/RelEB pair into the absolute bound for h.
func (o Options) resolveEB(h *Hierarchy) (float64, error) {
	eb := o.EB
	if o.RelEB != 0 {
		if o.EB != 0 {
			return 0, errors.New("repro: set exactly one of EB and RelEB")
		}
		rng := 0.0
		for li := range h.Levels {
			if r := h.Levels[li].Data.ValueRange(); r > rng {
				rng = r
			}
		}
		eb = o.RelEB * rng
	}
	if eb <= 0 {
		return 0, errors.New("repro: error bound must be positive")
	}
	return eb, nil
}

// CompressAMR runs the workflow on existing multi-resolution data.
func CompressAMR(h *Hierarchy, opt Options) (*Result, error) {
	eb, err := opt.resolveEB(h)
	if err != nil {
		return nil, err
	}
	co, err := opt.coreOptions(eb)
	if err != nil {
		return nil, err
	}

	var res Result
	t0 := time.Now()
	prep, err := core.Prepare(h, co)
	if err != nil {
		return nil, err
	}
	res.Timing.Preprocess = time.Since(t0)

	if opt.PostProcess {
		t0 = time.Now()
		res.Intensities, err = prep.FindIntensities()
		if err != nil {
			return nil, err
		}
		res.Timing.SampleModel = time.Since(t0)
	}

	t0 = time.Now()
	c, err := prep.Compress()
	if err != nil {
		return nil, err
	}
	res.Timing.Compress = time.Since(t0)
	res.Blob = c.Blob
	res.CompressionRatio = c.Ratio(h)

	t0 = time.Now()
	if opt.PostProcess {
		tp := time.Now()
		plain, err := core.DecompressWorkers(c.Blob, opt.Workers)
		if err != nil {
			return nil, err
		}
		_ = plain
		basis := time.Since(tp)
		res.Hierarchy, err = core.DecompressProcessedWorkers(c.Blob, res.Intensities, opt.Workers)
		if err != nil {
			return nil, err
		}
		res.Timing.PostProcess = time.Since(tp) - basis // incremental cost
	} else {
		res.Hierarchy, err = core.DecompressWorkers(c.Blob, opt.Workers)
		if err != nil {
			return nil, err
		}
	}
	res.Timing.Decompress = time.Since(t0)

	res.Recon = res.Hierarchy.Flatten()
	ref := h.Flatten()
	res.PSNR = metrics.PSNR(ref, res.Recon)
	res.SSIM = metrics.SSIMCentral(ref, res.Recon)
	if opt.Uncertainty {
		if err := res.analyzeUncertainty(opt); err != nil {
			return nil, err
		}
	}
	return &res, nil
}

// analyzeUncertainty estimates the error model from the reconstruction and
// computes cell-crossing probabilities on the flattened reconstruction.
func (r *Result) analyzeUncertainty(opt Options) error {
	eb := opt.EB
	if eb == 0 {
		eb = opt.RelEB * r.Recon.ValueRange()
	}
	// Error std-dev heuristic when no sample set is available: a normal fit
	// to a uniform error over ±eb (σ = eb/√3) bounds the truth; refined
	// models come from postproc samples via the uncertainty package.
	r.Model = ErrorModel{StdDev: eb / 1.732}
	p, err := uncertainty.CrossProbabilities(r.Recon, opt.IsoValue, r.Model)
	if err != nil {
		return err
	}
	r.CrossProbabilities = p
	return nil
}

// ContainerReader provides random access into a compressed container:
// ReadLevel, ReadBox, and ReadSlice decode only the streams they need. See
// the package doc's "Random access" section.
type ContainerReader = reader.Reader

// ContainerFile is a ContainerReader over an open file; Close releases it.
type ContainerFile = reader.FileReader

// BrickCache is the sharded byte-budgeted LRU holding decoded bricks.
type BrickCache = cache.Cache

// SliceAxis names the axis of a ReadSlice cross-section.
type SliceAxis = reader.Axis

// Slice axes.
const (
	AxisX = reader.AxisX
	AxisY = reader.AxisY
	AxisZ = reader.AxisZ
)

// NewBrickCache creates a brick cache bounded by budgetBytes (<= 0
// disables caching), to be shared across OpenContainerCached calls.
func NewBrickCache(budgetBytes int64) *BrickCache {
	return cache.New(budgetBytes, cache.DefaultShards)
}

// OpenContainer opens a compressed container for random access. Indexed
// (v3) containers cost one footer read; older containers cost one
// sequential scan, after which access is equally random.
func OpenContainer(src io.ReaderAt, size int64) (*ContainerReader, error) {
	return reader.Open(src, size)
}

// OpenContainerCached is OpenContainer with a shared brick cache; key
// distinguishes this container's bricks within it.
func OpenContainerCached(src io.ReaderAt, size int64, c *BrickCache, key string) (*ContainerReader, error) {
	return reader.Open(src, size, reader.WithCache(c), reader.WithCacheKey(key))
}

// OpenContainerFile opens a container file for random access.
func OpenContainerFile(path string) (*ContainerFile, error) {
	return reader.OpenFile(path)
}

// ContainerObject is a random-access reader over a container opened from a
// storage backend (local path, file:// URL, or http(s):// origin).
type ContainerObject = reader.StoreReader

// OpenContainerURL opens a container named by a URL for random access: a
// local path or file:// URL reads the filesystem; an http(s):// URL reads
// the remote object with range requests — one suffix-range GET fetches the
// index footer, and each stream read is a ranged GET, so a coarse level of
// a large remote container costs kilobytes of transfer, not the file.
func OpenContainerURL(rawurl string) (*ContainerObject, error) {
	st, key, err := store.OpenObjectURL(rawurl)
	if err != nil {
		return nil, err
	}
	return reader.OpenStore(st, key)
}

// VerifyResult is the damage report of a container scrub: how many streams
// were checked (against footer checksums) or decoded (pre-checksum
// footers), and which failed.
type VerifyResult = reader.VerifyResult

// Verify scrubs an open container: every stream's payload is read and
// checked against its per-stream footer checksum, or fully decoded when the
// footer predates checksums. Per-stream failures land in the result's
// Faults, not the error — run it periodically against shared storage to
// find bit rot before a request does (cmd/mrcompress -verify is the CLI).
func Verify(ctx context.Context, r *ContainerReader) (*VerifyResult, error) {
	return r.Verify(ctx)
}

// VerifyFile opens path and scrubs it; see Verify.
func VerifyFile(ctx context.Context, path string) (*VerifyResult, error) {
	f, err := reader.OpenFile(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return f.Verify(ctx)
}

// Decompress reconstructs the hierarchy from a compressed container.
func Decompress(blob []byte) (*Hierarchy, error) { return core.Decompress(blob) }

// DecompressWorkers is Decompress with an explicit bound on concurrent
// stream decoders (0 = runtime.GOMAXPROCS(0), 1 = serial).
func DecompressWorkers(blob []byte, workers int) (*Hierarchy, error) {
	return core.DecompressWorkers(blob, workers)
}

// ConvertROI exposes the uniform→adaptive conversion alone.
func ConvertROI(f *Field, blockB int, topFrac float64) (*Hierarchy, error) {
	return roi.Convert(f, roi.Options{BlockB: blockB, TopFrac: topFrac})
}

// PSNR, SSIM, and CompressionRatio re-export the evaluation metrics.
func PSNR(a, b *Field) float64 { return metrics.PSNR(a, b) }

// SSIM computes the mean SSIM over all z slices.
func SSIM(a, b *Field) float64 { return metrics.SSIM3D(a, b) }

// CompressionRatio is originalBytes/compressedBytes.
func CompressionRatio(originalBytes, compressedBytes int) float64 {
	return metrics.CompressionRatio(originalBytes, compressedBytes)
}
