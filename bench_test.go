package repro_test

// Benchmark harness: one benchmark per paper table/figure (each wraps the
// corresponding experiment from internal/experiments and regenerates its
// rows), plus component micro-benchmarks for the compressors and analysis
// stages. Run everything with:
//
//	go test -bench=. -benchmem
//
// Experiment benchmarks default to a 32³ domain so the full suite stays
// tractable; set MRBENCH_SIZE=64 (multiples of 16, powers of two for
// spectra) to scale up.

import (
	"io"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fft"
	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/huffman"
	"repro/internal/mcubes"
	"repro/internal/metrics"
	"repro/internal/postproc"
	"repro/internal/reader"
	"repro/internal/synth"
	"repro/internal/sz2"
	"repro/internal/sz3"
	"repro/internal/zfp"
)

func benchSize() int {
	if v := os.Getenv("MRBENCH_SIZE"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 16 {
			return n
		}
	}
	return 32
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	cfg := experiments.Config{Size: benchSize(), Seed: 42}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one benchmark per paper artifact ---------------------------------------

func BenchmarkFig1AMRExample(b *testing.B)        { benchExperiment(b, "fig1") }
func BenchmarkFig2LevelDistribution(b *testing.B) { benchExperiment(b, "fig2") }
func BenchmarkFig4ROI(b *testing.B)               { benchExperiment(b, "fig4") }
func BenchmarkFig5VisCompare(b *testing.B)        { benchExperiment(b, "fig5") }
func BenchmarkFig9PostVis(b *testing.B)           { benchExperiment(b, "fig9") }
func BenchmarkTable1Filters(b *testing.B)         { benchExperiment(b, "tab1") }
func BenchmarkFig12PostprocRD(b *testing.B)       { benchExperiment(b, "fig12") }
func BenchmarkTable2SZ2Post(b *testing.B)         { benchExperiment(b, "tab2") }
func BenchmarkFig14Uncertainty(b *testing.B)      { benchExperiment(b, "fig14") }
func BenchmarkFig15InSituAMR(b *testing.B)        { benchExperiment(b, "fig15") }
func BenchmarkTable4OutputTime(b *testing.B)      { benchExperiment(b, "tab4") }
func BenchmarkTable5PostSZ2AMR(b *testing.B)      { benchExperiment(b, "tab5") }
func BenchmarkFig16WarpXVis(b *testing.B)         { benchExperiment(b, "fig16") }
func BenchmarkFig17AdaptiveRD(b *testing.B)       { benchExperiment(b, "fig17") }
func BenchmarkFig18OfflineRD(b *testing.B)        { benchExperiment(b, "fig18") }
func BenchmarkTable6PowerSpectrum(b *testing.B)   { benchExperiment(b, "tab6") }
func BenchmarkTable7PostMultiRes(b *testing.B)    { benchExperiment(b, "tab7") }
func BenchmarkTable8PostUniform(b *testing.B)     { benchExperiment(b, "tab8") }
func BenchmarkTable9Overhead(b *testing.B)        { benchExperiment(b, "tab9") }

// --- ablation benchmarks -----------------------------------------------------

func BenchmarkAblationPaddingKind(b *testing.B)  { benchExperiment(b, "abl-padkind") }
func BenchmarkAblationPadThreshold(b *testing.B) { benchExperiment(b, "abl-padthreshold") }
func BenchmarkAblationAlphaBeta(b *testing.B)    { benchExperiment(b, "abl-alphabeta") }
func BenchmarkAblationInterpolant(b *testing.B)  { benchExperiment(b, "abl-interp") }
func BenchmarkAblationSampling(b *testing.B)     { benchExperiment(b, "abl-sampling") }
func BenchmarkAblationArrangement(b *testing.B)  { benchExperiment(b, "abl-arrange") }
func BenchmarkAblationCurve(b *testing.B)        { benchExperiment(b, "abl-curve") }

// --- future-work extension benchmarks ----------------------------------------

func BenchmarkExtHaloPreservation(b *testing.B) { benchExperiment(b, "ext-halo") }
func BenchmarkExtVolumeRender(b *testing.B)     { benchExperiment(b, "ext-volren") }

// --- component micro-benchmarks ---------------------------------------------

func benchField(b *testing.B) *field.Field {
	b.Helper()
	return synth.Generate(synth.Nyx, benchSize(), 42)
}

func BenchmarkSZ3Compress(b *testing.B) {
	f := benchField(b)
	eb := f.ValueRange() * 1e-3
	b.SetBytes(int64(f.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sz3.Compress(f, sz3.Options{EB: eb}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSZ3Decompress(b *testing.B) {
	f := benchField(b)
	eb := f.ValueRange() * 1e-3
	blob, err := sz3.Compress(f, sz3.Options{EB: eb})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(f.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sz3.Decompress(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSZ2Compress(b *testing.B) {
	f := benchField(b)
	eb := f.ValueRange() * 1e-3
	b.SetBytes(int64(f.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sz2.Compress(f, sz2.Options{EB: eb}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkZFPCompress(b *testing.B) {
	f := benchField(b)
	eb := f.ValueRange() * 1e-3
	b.SetBytes(int64(f.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := zfp.Compress(f, zfp.Options{Tolerance: eb}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSZ3MRPipeline(b *testing.B) {
	f := benchField(b)
	h, err := grid.BuildAMR(f, 16, []float64{0.25, 0.75})
	if err != nil {
		b.Fatal(err)
	}
	eb := f.ValueRange() * 1e-3
	b.SetBytes(int64(h.PayloadBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CompressHierarchy(h, core.SZ3MROptions(eb)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPostProcess(b *testing.B) {
	f := benchField(b)
	eb := f.ValueRange() * 5e-3
	blob, err := zfp.Compress(f, zfp.Options{Tolerance: eb})
	if err != nil {
		b.Fatal(err)
	}
	dec, err := zfp.Decompress(blob)
	if err != nil {
		b.Fatal(err)
	}
	opt := postproc.Options{EB: eb, BlockSize: 4}
	a := postproc.Uniform(0.02)
	b.SetBytes(int64(f.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postproc.Process(dec, a, opt)
	}
}

func BenchmarkMarchingTetrahedra(b *testing.B) {
	f := benchField(b)
	iso := f.Mean() * 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mcubes.ExtractSurface(f, iso)
	}
}

func BenchmarkPowerSpectrum(b *testing.B) {
	f := benchField(b)
	b.SetBytes(int64(f.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fft.PowerSpectrum(f, 9)
	}
}

func BenchmarkSSIM(b *testing.B) {
	f := benchField(b)
	g := f.Clone()
	g.Data[0] += 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.SSIMCentral(f, g)
	}
}

// --- core parallel-pipeline benchmarks ---------------------------------------
//
// These measure the tentpole claim directly: container compression /
// decompression over a ≥128³ AMR hierarchy, serial vs pooled. The TAC
// arrangement is used because it produces many independent streams (one per
// adjacency box), which is where per-stream parallelism pays off. Compare:
//
//	go test -bench 'CoreCompressWorkers|CoreDecompressWorkers' -benchtime 3x
//
// The Workers knob never changes the container bytes (see
// TestWorkersByteIdenticalContainers), only the wall clock.

func benchParallelHierarchy(b *testing.B) (*grid.Hierarchy, float64) {
	b.Helper()
	n := benchSize()
	if n < 128 {
		n = 128
	}
	f := synth.Generate(synth.Nyx, n, 42)
	h, err := grid.BuildAMR(f, 16, []float64{0.25, 0.75})
	if err != nil {
		b.Fatal(err)
	}
	return h, f.ValueRange() * 1e-3
}

func benchCoreCompressWorkers(b *testing.B, workers int) {
	h, eb := benchParallelHierarchy(b)
	opt := core.TACSZ3Options(eb)
	opt.Workers = workers
	prep, err := core.Prepare(h, opt)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(h.PayloadBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prep.Compress(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreCompressWorkers1(b *testing.B)   { benchCoreCompressWorkers(b, 1) }
func BenchmarkCoreCompressWorkers4(b *testing.B)   { benchCoreCompressWorkers(b, 4) }
func BenchmarkCoreCompressWorkersMax(b *testing.B) { benchCoreCompressWorkers(b, 0) }

func benchCoreDecompressWorkers(b *testing.B, workers int) {
	h, eb := benchParallelHierarchy(b)
	c, err := core.CompressHierarchy(h, core.TACSZ3Options(eb))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(h.PayloadBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DecompressWorkers(c.Blob, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreDecompressWorkers1(b *testing.B)   { benchCoreDecompressWorkers(b, 1) }
func BenchmarkCoreDecompressWorkers4(b *testing.B)   { benchCoreDecompressWorkers(b, 4) }
func BenchmarkCoreDecompressWorkersMax(b *testing.B) { benchCoreDecompressWorkers(b, 0) }

// --- entropy-stage benchmarks -------------------------------------------------
//
// These measure the Huffman entropy stage in isolation on a realistic
// quantization-code stream: the codes sz3 produces for a 128³ Nyx field at a
// 1e-3 relative error bound. Throughput is reported over the raw int32
// payload. The committed BENCH_entropy.json records the trajectory (see
// README "Performance"); regenerate with `mrbench -exp entropy -json FILE`.

func huffmanBenchCodes(b *testing.B) []int32 {
	b.Helper()
	f := synth.Generate(synth.Nyx, 128, 42)
	eb := f.ValueRange() * 1e-3
	codes, err := sz3.Codes(f, sz3.Options{EB: eb})
	if err != nil {
		b.Fatal(err)
	}
	return codes
}

func BenchmarkHuffmanEncode(b *testing.B) {
	codes := huffmanBenchCodes(b)
	b.SetBytes(int64(len(codes) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		huffman.Encode(codes)
	}
}

func BenchmarkHuffmanDecode(b *testing.B) {
	codes := huffmanBenchCodes(b)
	enc := huffman.Encode(codes)
	b.SetBytes(int64(len(codes) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := huffman.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// The interleaved-lane variants of the same decode. The serial (workers=1)
// rows isolate the ILP win of overlapping lane dependency chains on one
// core; the workers=0 row adds goroutine-parallel lanes on multi-core
// machines.
func benchmarkHuffmanDecodeLanes(b *testing.B, lanes, workers int) {
	codes := huffmanBenchCodes(b)
	enc := huffman.EncodeInterleaved(codes, lanes)
	b.SetBytes(int64(len(codes) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := huffman.DecodeWorkers(enc, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHuffmanDecodeLanes2(b *testing.B) { benchmarkHuffmanDecodeLanes(b, 2, 1) }
func BenchmarkHuffmanDecodeLanes4(b *testing.B) { benchmarkHuffmanDecodeLanes(b, 4, 1) }
func BenchmarkHuffmanDecodeLanes8(b *testing.B) { benchmarkHuffmanDecodeLanes(b, 8, 1) }
func BenchmarkHuffmanDecodeLanes4Workers(b *testing.B) {
	benchmarkHuffmanDecodeLanes(b, 4, 0)
}

func BenchmarkROIConvert(b *testing.B) {
	f := benchField(b)
	b.SetBytes(int64(f.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.ConvertROI(f, 16, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// --- serving benchmarks -------------------------------------------------------
//
// These measure the random-access path behind mrserve: ReadLevel through the
// v3 container index versus decoding everything. The committed
// BENCH_serve.json records the trajectory; regenerate with
// `mrbench -exp serve -size 128 -json FILE`.

func BenchmarkServeExperiment(b *testing.B) { benchExperiment(b, "serve") }

// The integrity experiment prices per-stream CRC verification on the read
// path; the committed BENCH_integrity.json records the trajectory.
func BenchmarkIntegrityExperiment(b *testing.B) { benchExperiment(b, "integrity") }

func benchServeContainer(b *testing.B) (string, int) {
	b.Helper()
	f := synth.Generate(synth.Nyx, benchSize(), 42)
	h, err := grid.BuildAMR(f, 16, []float64{0.25, 0.35, 0.40})
	if err != nil {
		b.Fatal(err)
	}
	c, err := core.CompressHierarchy(h, core.SZ3MROptions(f.ValueRange()*1e-3))
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.mrw")
	if err := os.WriteFile(path, c.Blob, 0o644); err != nil {
		b.Fatal(err)
	}
	return path, len(h.Levels)
}

func BenchmarkReadLevelCoarsestCold(b *testing.B) {
	path, levels := benchServeContainer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := reader.OpenFile(path, reader.WithCache(nil))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.ReadLevel(levels - 1); err != nil {
			b.Fatal(err)
		}
		r.Close()
	}
}

func BenchmarkReadLevelCoarsestCached(b *testing.B) {
	path, levels := benchServeContainer(b)
	r, err := reader.OpenFile(path)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.ReadLevel(levels - 1); err != nil {
			b.Fatal(err)
		}
	}
}
