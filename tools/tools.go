//go:build tools

// Package tools records the commands CI depends on, in the standard
// tools.go idiom: blank imports under a never-satisfied build tag keep the
// pins in go.mod honest (`go mod tidy` inside this module would retain
// them) without compiling anything.
package tools

import (
	_ "golang.org/x/vuln/cmd/govulncheck"
	_ "honnef.co/go/tools/cmd/staticcheck"
)
