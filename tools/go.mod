// Nested module pinning the versions of the analysis tools CI installs.
// It is a separate module so the root `go build ./...` / `go test ./...`
// never try to resolve these (the main module stays dependency-free); CI
// reads the versions out of this file and `go install`s each tool.
module repro/tools

go 1.22

require (
	golang.org/x/vuln v1.1.3
	honnef.co/go/tools v0.4.7
)
