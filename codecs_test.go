package repro

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/synth"
)

func TestCodecsVocabulary(t *testing.T) {
	want := []string{"flate", "sz2", "sz3", "zfp"}
	if got := Codecs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Codecs() = %v, want %v", got, want)
	}
	if c, err := ParseCodec(""); err != nil || c != SZ3 {
		t.Fatalf(`ParseCodec("") = %q, %v; want default sz3`, c, err)
	}
	if c, err := ParseCodec("ZFP"); err != nil || c != ZFP {
		t.Fatalf(`ParseCodec("ZFP") = %q, %v; want canonical zfp`, c, err)
	}
	if _, err := ParseCodec("lzma"); err == nil || !strings.Contains(err.Error(), "registered") {
		t.Fatalf("ParseCodec(lzma) = %v, want error enumerating the registry", err)
	}
}

func TestParseLevelCodecs(t *testing.T) {
	m, err := ParseLevelCodecs(" 0:sz3, 2:FLATE ")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, map[int]Compressor{0: SZ3, 2: Flate}) {
		t.Fatalf("parsed %v", m)
	}
	if m, err := ParseLevelCodecs(""); err != nil || m != nil {
		t.Fatalf("empty spec: %v, %v", m, err)
	}
	for _, bad := range []string{"flate", "x:flate", "-1:flate", "0:lzma", "0:sz3,0:zfp"} {
		if _, err := ParseLevelCodecs(bad); err == nil {
			t.Errorf("spec %q: expected error", bad)
		}
	}
}

// TestLevelCodecsWorkflow runs the public pipeline with a mixed per-level
// codec configuration end to end: compress (streaming and in-memory paths
// must agree), decompress, and random access through a ContainerReader —
// with the lossless coarse level byte-exact against a flate-only run.
func TestLevelCodecsWorkflow(t *testing.T) {
	f := synth.Generate(synth.Nyx, 32, 11)
	opt := Options{RelEB: 1e-3, LevelCodecs: map[int]Compressor{1: Flate}}

	res, err := CompressUniform(f, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := CompressTo(f, opt, &buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), res.Blob) {
		t.Fatal("streaming and in-memory mixed-codec containers differ")
	}

	r, err := OpenContainer(bytes.NewReader(res.Blob), int64(len(res.Blob)))
	if err != nil {
		t.Fatal(err)
	}
	if r.NumLevels() != len(res.Hierarchy.Levels) {
		t.Fatalf("reader sees %d levels, hierarchy has %d", r.NumLevels(), len(res.Hierarchy.Levels))
	}
	for li := range res.Hierarchy.Levels {
		got, err := r.ReadLevel(li)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(res.Hierarchy.Levels[li].Data) {
			t.Fatalf("level %d: reader differs from Decompress", li)
		}
	}

	// The flate level carries the pre-compression data exactly: a run with
	// every level lossless must agree with the mixed run on that level.
	lossless, err := CompressUniform(f, Options{RelEB: 1e-3, Compressor: Flate})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hierarchy.Levels[1].Data.Equal(lossless.Hierarchy.Levels[1].Data) {
		t.Fatal("mixed run's flate level is not bit-exact")
	}
}

// TestParseEntropyLanes locks the flag/query vocabulary for entropy lane
// counts: empty keeps the default single-lane format, "auto" defers the
// choice to the encoder, explicit counts must be powers of two within the
// format's limit.
func TestParseEntropyLanes(t *testing.T) {
	good := map[string]int{
		"":     0,
		"auto": EntropyLanesAuto,
		"1":    1,
		"2":    2,
		"8":    8,
		"64":   64,
	}
	for in, want := range good {
		got, err := ParseEntropyLanes(in)
		if err != nil {
			t.Fatalf("ParseEntropyLanes(%q): %v", in, err)
		}
		if got != want {
			t.Fatalf("ParseEntropyLanes(%q) = %d, want %d", in, got, want)
		}
	}
	for _, in := range []string{"0x4", "3", "-2", "128", "two"} {
		if n, err := ParseEntropyLanes(in); err == nil {
			t.Fatalf("ParseEntropyLanes(%q) = %d, want error", in, n)
		}
	}
}
