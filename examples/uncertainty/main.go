// Uncertainty-visualization example (Fig. 14): a hurricane-like field is
// compressed aggressively with ZFP; the compression error pruning parts of
// an isosurface is then recovered visually by probabilistic marching cubes,
// whose Gaussian error model is estimated from the same samples the
// post-processing stage collects. Writes the three panels of Fig. 14 as
// PNGs into ./out.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/mcubes"
	"repro/internal/postproc"
	"repro/internal/render"
	"repro/internal/synth"
	"repro/internal/uncertainty"
	"repro/internal/zfp"
)

func main() {
	f := synth.GenerateDims(synth.Hurricane, 64, 64, 32, 11)
	iso := f.Mean() * 1.5
	eb := f.ValueRange() * 0.04 // aggressive compression, CR ~ hundreds

	blob, err := zfp.Compress(f, zfp.Options{Tolerance: eb})
	if err != nil {
		log.Fatal(err)
	}
	dec, err := zfp.Decompress(blob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ZFP CR %.1f at tolerance %.3g\n", float64(f.Bytes())/float64(len(blob)), eb)

	// Isosurfaces before and after compression.
	origTris := mcubes.ExtractSurface(f, iso)
	decTris := mcubes.ExtractSurface(dec, iso)
	fmt.Printf("isosurface at %.2f: original %d triangles (area %.1f), decompressed %d (area %.1f)\n",
		iso, len(origTris), mcubes.SurfaceArea(origTris), len(decTris), mcubes.SurfaceArea(decTris))

	// Error model from the workflow's compression samples, conditioned on
	// voxels near the isovalue (§III-C).
	rt := func(g *field.Field) (*field.Field, error) {
		b, err := zfp.Compress(g, zfp.Options{Tolerance: eb})
		if err != nil {
			return nil, err
		}
		return zfp.Decompress(b)
	}
	set, err := postproc.CollectSamples(f, rt, postproc.Options{
		EB: eb, BlockSize: 4, Candidates: core.PostCandidates(core.ZFP)})
	if err != nil {
		log.Fatal(err)
	}
	model := uncertainty.ModelNearIsovalue(set, iso, eb*4)
	fmt.Printf("error model near isovalue: mean %.3g, stddev %.3g\n", model.Mean, model.StdDev)

	rec, err := uncertainty.AnalyzeRecovery(f, dec, iso, model, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compression pruned %d of %d crossing cells; uncertainty vis recovers %d (%.0f%%)\n",
		rec.Lost, rec.OrigCells, rec.Recovered, rec.RecoveryRate()*100)

	// Render the three panels.
	if err := os.MkdirAll("out", 0o755); err != nil {
		log.Fatal(err)
	}
	probs, err := uncertainty.CrossProbabilities(dec, iso, model)
	if err != nil {
		log.Fatal(err)
	}
	z := f.Nz / 2
	must(render.SavePNG(render.SliceZ(f, z, render.Gray), "out/original.png"))
	must(render.SavePNG(render.SliceZ(dec, z, render.Gray), "out/decompressed.png"))
	overlay, err := render.UncertaintyOverlay(dec, probs, z)
	if err != nil {
		log.Fatal(err)
	}
	must(render.SavePNG(overlay, "out/uncertainty.png"))
	fmt.Println("wrote out/original.png, out/decompressed.png, out/uncertainty.png")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
