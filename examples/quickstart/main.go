// Quickstart: generate a synthetic scientific dataset, run the complete
// multi-resolution workflow on it (ROI extraction → SZ3MR compression →
// decompression), and report compression ratio and quality.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/synth"
)

func main() {
	// A 64³ cosmology-like density field standing in for simulation output.
	f := synth.Generate(synth.Nyx, 64, 1)
	fmt.Printf("input: %v, raw size %.1f MB\n", f, float64(f.Bytes())/1e6)

	// The paper's recommended configuration: SZ3MR (linear merge + padding
	// + adaptive per-level error bound) at a 1e-3 relative error bound,
	// keeping the top 50% of blocks (by value range) at full resolution.
	res, err := repro.CompressUniform(f, repro.Options{
		RelEB:      1e-3,
		Compressor: repro.SZ3,
		ROIBlockB:  16,
		ROITopFrac: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("compressed container: %.1f KB\n", float64(len(res.Blob))/1e3)
	fmt.Printf("compression ratio (vs multi-resolution payload): %.1fx\n", res.CompressionRatio)
	fmt.Printf("compression ratio (vs uniform raw):              %.1fx\n",
		repro.CompressionRatio(f.Bytes(), len(res.Blob)))
	fmt.Printf("reconstruction quality: PSNR %.2f dB, SSIM %.4f\n", res.PSNR, res.SSIM)
	fmt.Printf("timing: ROI %v, pre-process %v, compress %v, decompress %v\n",
		res.Timing.ROI.Round(1e6), res.Timing.Preprocess.Round(1e6),
		res.Timing.Compress.Round(1e6), res.Timing.Decompress.Round(1e6))

	// The container is self-describing: decompress it anywhere.
	h, err := repro.Decompress(res.Blob)
	if err != nil {
		log.Fatal(err)
	}
	rec := h.Flatten()
	fmt.Printf("round trip check: PSNR %.2f dB\n", repro.PSNR(f, rec))
}
