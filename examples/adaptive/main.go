// Adaptive-data example: a WarpX-like uniform electromagnetic field is
// converted to multi-resolution form with the paper's compression-oriented
// ROI extraction, then compressed with the baseline SZ3 layout and with
// SZ3MR (padding + adaptive error bound) at the same error bound —
// demonstrating the §III-A improvements on data that never had AMR.
// Finally the block-wise ZFP backend is post-processed with the
// error-bounded Bézier stage (§III-B).
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/synth"
)

func main() {
	// Elongated domain like WarpX's 256²×2048 (scaled down).
	f := synth.GenerateDims(synth.WarpX, 32, 32, 128, 7)
	fmt.Printf("uniform input: %v (%.1f MB)\n", f, float64(f.Bytes())/1e6)

	// ROI extraction: half the blocks keep full resolution.
	h, err := repro.ConvertROI(f, 16, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adaptive data: fine density %.0f%%, payload %.1f MB (%.2fx smaller)\n",
		h.Density(0)*100, float64(h.PayloadBytes())/1e6,
		float64(f.Bytes())/float64(h.PayloadBytes()))

	for _, cfg := range []struct {
		name string
		opt  repro.Options
	}{
		{"Baseline-SZ3", repro.Options{RelEB: 2e-3, DisablePad: true, DisableAdaptiveEB: true}},
		{"SZ3MR (pad+eb)", repro.Options{RelEB: 2e-3}},
		{"ZFP", repro.Options{RelEB: 2e-2, Compressor: repro.ZFP}},
		{"ZFP + post-process", repro.Options{RelEB: 2e-2, Compressor: repro.ZFP, PostProcess: true}},
	} {
		res, err := repro.CompressAMR(h, cfg.opt)
		if err != nil {
			log.Fatal(err)
		}
		// Quality against the original uniform field.
		psnr := repro.PSNR(f, res.Recon)
		fmt.Printf("%-20s CR %6.1f   PSNR %6.2f dB   SSIM %.4f\n",
			cfg.name, res.CompressionRatio, psnr, res.SSIM)
	}
}
