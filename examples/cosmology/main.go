// Cosmology in-situ example: a toy AMR "gravity collapse" simulation emits
// snapshots that are compressed in situ with SZ3MR, mirroring the paper's
// Nyx integration. Each step reports the output-time breakdown the paper
// analyzes in Table IV (pre-processing vs compression+write) and validates
// the decompressed snapshot with the power-spectrum diagnostic used for Nyx
// (Table VI): the relative error for all k < 10 must stay below 1%.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/fft"
	"repro/internal/sim"
)

func main() {
	outDir, err := os.MkdirTemp("", "cosmo")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(outDir)

	s := sim.New(sim.Config{N: 64, Seed: 3, FineFrac: 0.25})
	fmt.Println("step | payload MB | CR    | pre(ms) | comp+write(ms) | specErr(max k<10)")

	for step := 0; step < 5; step++ {
		s.Step(1.0)
		h, err := s.Snapshot()
		if err != nil {
			log.Fatal(err)
		}
		rng := 0.0
		for _, lv := range h.Levels {
			if r := lv.Data.ValueRange(); r > rng {
				rng = r
			}
		}

		// In-situ output: pre-process (collect + merge + pad), then
		// compress and write — the two phases of Table IV.
		t0 := time.Now()
		prep, err := core.Prepare(h, core.SZ3MROptions(rng*1e-3))
		if err != nil {
			log.Fatal(err)
		}
		pre := time.Since(t0)

		t0 = time.Now()
		c, err := prep.Compress()
		if err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(outDir, fmt.Sprintf("snap%03d.mrw", step))
		if err := os.WriteFile(path, c.Blob, 0o644); err != nil {
			log.Fatal(err)
		}
		cw := time.Since(t0)

		// Post-hoc validation (offline in a real run): decompress and
		// compare matter power spectra.
		g, err := core.Decompress(c.Blob)
		if err != nil {
			log.Fatal(err)
		}
		errs := fft.SpectrumRelErrors(h.Flatten(), g.Flatten(), 9)
		maxE, _ := fft.MaxAvg(errs)

		fmt.Printf("%4d | %10.1f | %5.1f | %7.1f | %14.1f | %.2e\n",
			s.StepIndex(), float64(h.PayloadBytes())/1e6, c.Ratio(h),
			float64(pre.Microseconds())/1e3, float64(cw.Microseconds())/1e3, maxE)

		if maxE > 0.01 {
			fmt.Println("  WARNING: power-spectrum error above the 1% Nyx acceptance threshold")
		}
	}
	fmt.Println("done: snapshots written, all spectra validated")
}
