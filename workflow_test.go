package repro

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/synth"
)

func TestWorkersKnobDoesNotChangeOutput(t *testing.T) {
	f := synth.Generate(synth.Nyx, 64, 17)
	h, err := grid.BuildAMR(f, 16, []float64{0.3, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	var blobs [][]byte
	for _, workers := range []int{1, 4} {
		res, err := CompressAMR(h, Options{RelEB: 1e-3, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		blobs = append(blobs, res.Blob)
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Fatalf("Workers=1 and Workers=4 containers differ (%d vs %d bytes)",
			len(blobs[0]), len(blobs[1]))
	}
	g1, err := DecompressWorkers(blobs[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	g4, err := DecompressWorkers(blobs[0], 4)
	if err != nil {
		t.Fatal(err)
	}
	a, b := g1.Flatten(), g4.Flatten()
	if a.MaxAbsDiff(b) != 0 {
		t.Fatal("decode differs between worker counts")
	}
}

func TestCompressUniformDefaultWorkflow(t *testing.T) {
	f := synth.Generate(synth.Nyx, 64, 1)
	res, err := CompressUniform(f, Options{RelEB: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompressionRatio < 2 {
		t.Fatalf("CR %.2f too low", res.CompressionRatio)
	}
	if res.PSNR < 30 {
		t.Fatalf("PSNR %.1f too low", res.PSNR)
	}
	if !res.Recon.SameShape(f) {
		t.Fatal("reconstruction shape mismatch")
	}
	if res.Timing.Preprocess <= 0 || res.Timing.Compress <= 0 {
		t.Fatal("timings not recorded")
	}
}

func TestCompressAMRAllBackends(t *testing.T) {
	f := synth.Generate(synth.Nyx, 64, 2)
	h, err := grid.BuildAMR(f, 16, []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	for _, comp := range []Compressor{SZ3, SZ2, ZFP} {
		res, err := CompressAMR(h, Options{RelEB: 1e-3, Compressor: comp})
		if err != nil {
			t.Fatalf("%s: %v", comp, err)
		}
		if res.CompressionRatio < 1.5 {
			t.Fatalf("%s: CR %.2f", comp, res.CompressionRatio)
		}
		// Round trip container.
		g, err := Decompress(res.Blob)
		if err != nil {
			t.Fatalf("%s: %v", comp, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", comp, err)
		}
	}
}

func TestPostProcessImprovesBlockwiseBackends(t *testing.T) {
	f := synth.Generate(synth.Nyx, 64, 3)
	h, err := grid.BuildAMR(f, 16, []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	for _, comp := range []Compressor{SZ2, ZFP} {
		plain, err := CompressAMR(h, Options{RelEB: 5e-3, Compressor: comp})
		if err != nil {
			t.Fatal(err)
		}
		post, err := CompressAMR(h, Options{RelEB: 5e-3, Compressor: comp, PostProcess: true})
		if err != nil {
			t.Fatal(err)
		}
		if post.PSNR < plain.PSNR-1e-9 {
			t.Fatalf("%s: post-processing hurt PSNR: %.2f -> %.2f", comp, plain.PSNR, post.PSNR)
		}
		if post.Timing.SampleModel <= 0 {
			t.Fatalf("%s: sample/model timing missing", comp)
		}
	}
}

func TestErrorBoundHolds(t *testing.T) {
	f := synth.Generate(synth.RT, 32, 4)
	h, err := grid.BuildAMR(f, 8, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	eb := 1e-3
	res, err := CompressAMR(h, Options{EB: eb})
	if err != nil {
		t.Fatal(err)
	}
	// Per-level stored samples obey the bound.
	for li := range h.Levels {
		for _, bc := range h.OwnedBlocks(li) {
			a := h.BlockField(li, bc[0], bc[1], bc[2])
			b := res.Hierarchy.BlockField(li, bc[0], bc[1], bc[2])
			if d := a.MaxAbsDiff(b); d > eb*(1+1e-12) {
				t.Fatalf("level %d block %v error %g > %g", li, bc, d, eb)
			}
		}
	}
}

func TestUncertaintyStage(t *testing.T) {
	f := synth.Generate(synth.Hurricane, 32, 5)
	res, err := CompressUniform(f, Options{
		RelEB: 1e-2, Compressor: ZFP,
		ROIBlockB: 8, Uncertainty: true, IsoValue: f.Mean() * 1.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CrossProbabilities == nil {
		t.Fatal("no probability field")
	}
	if res.Model.StdDev <= 0 {
		t.Fatal("no error model")
	}
	for _, p := range res.CrossProbabilities.Data {
		if p < -1e-9 || p > 1+1e-9 || math.IsNaN(p) {
			t.Fatalf("invalid probability %g", p)
		}
	}
}

func TestOptionValidation(t *testing.T) {
	f := synth.Generate(synth.S3D, 32, 6)
	if _, err := CompressUniform(f, Options{}); err == nil {
		t.Fatal("missing error bound accepted")
	}
	if _, err := CompressUniform(f, Options{EB: 1, RelEB: 1}); err == nil {
		t.Fatal("both EB and RelEB accepted")
	}
	if _, err := CompressUniform(f, Options{EB: 1, Compressor: "bogus"}); err == nil {
		t.Fatal("bogus compressor accepted")
	}
	if _, err := CompressUniform(f, Options{EB: 1, Arrangement: "bogus"}); err == nil {
		t.Fatal("bogus arrangement accepted")
	}
}

func TestArrangementsViaFacade(t *testing.T) {
	f := synth.Generate(synth.Nyx, 32, 7)
	h, err := grid.BuildAMR(f, 8, []float64{0.3, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	for _, arr := range []Arrangement{Linear, Stack, TAC, ZOrder1D} {
		res, err := CompressAMR(h, Options{RelEB: 1e-3, Arrangement: arr})
		if err != nil {
			t.Fatalf("%s: %v", arr, err)
		}
		if res.PSNR < 20 {
			t.Fatalf("%s: PSNR %.1f", arr, res.PSNR)
		}
	}
}

func TestConvertROIExposed(t *testing.T) {
	f := synth.Generate(synth.WarpX, 32, 8)
	h, err := ConvertROI(f, 8, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if d := h.Density(0); math.Abs(d-0.25) > 0.02 {
		t.Fatalf("density %g", d)
	}
}

func TestMetricReexports(t *testing.T) {
	f := synth.Generate(synth.S3D, 16, 9)
	if !math.IsInf(PSNR(f, f), 1) {
		t.Fatal("PSNR re-export broken")
	}
	if s := SSIM(f, f); math.Abs(s-1) > 1e-9 {
		t.Fatal("SSIM re-export broken")
	}
	if CompressionRatio(100, 10) != 10 {
		t.Fatal("CR re-export broken")
	}
}
