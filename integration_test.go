package repro

// End-to-end integration matrix: every dataset × backend × arrangement
// combination must round-trip through the full workflow with the error
// bound intact, a valid container, and sane quality metrics. This is the
// repository's broadest correctness net; narrower behaviour lives in the
// per-package tests.

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/synth"
)

func TestWorkflowMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix is slow; skipped in -short")
	}
	datasets := []synth.Dataset{synth.Nyx, synth.WarpX, synth.RT, synth.Hurricane, synth.S3D}
	compressors := []Compressor{SZ3, SZ2, ZFP}
	for _, ds := range datasets {
		for _, comp := range compressors {
			ds, comp := ds, comp
			t.Run(fmt.Sprintf("%s-%s", ds, comp), func(t *testing.T) {
				f := synth.Generate(ds, 32, 21)
				res, err := CompressUniform(f, Options{
					RelEB:      2e-3,
					Compressor: comp,
					ROIBlockB:  8,
					ROITopFrac: 0.4,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.CompressionRatio < 1 {
					t.Fatalf("CR %.2f below 1", res.CompressionRatio)
				}
				if math.IsNaN(res.PSNR) || res.PSNR < 10 {
					t.Fatalf("PSNR %.2f implausible", res.PSNR)
				}
				// Independent decode of the container must agree with the
				// in-process reconstruction.
				h, err := Decompress(res.Blob)
				if err != nil {
					t.Fatal(err)
				}
				if err := h.Validate(); err != nil {
					t.Fatal(err)
				}
				if !h.Flatten().Equal(res.Recon) {
					// Post-processing is off here, so these must match.
					t.Fatal("container decode disagrees with workflow reconstruction")
				}
			})
		}
	}
}

func TestArrangementMatrixErrorBound(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix is slow; skipped in -short")
	}
	f := synth.Generate(synth.Nyx, 32, 22)
	h, err := grid.BuildAMR(f, 8, []float64{0.3, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	rng := 0.0
	for _, lv := range h.Levels {
		if r := lv.Data.ValueRange(); r > rng {
			rng = r
		}
	}
	eb := rng * 1e-3
	for _, arr := range []Arrangement{Linear, Stack, TAC, ZOrder1D} {
		for _, comp := range []Compressor{SZ3, SZ2, ZFP} {
			res, err := CompressAMR(h, Options{EB: eb, Compressor: comp, Arrangement: arr})
			if err != nil {
				t.Fatalf("%s/%s: %v", arr, comp, err)
			}
			for li := range h.Levels {
				for _, bc := range h.OwnedBlocks(li) {
					a := h.BlockField(li, bc[0], bc[1], bc[2])
					b := res.Hierarchy.BlockField(li, bc[0], bc[1], bc[2])
					if d := a.MaxAbsDiff(b); d > eb*(1+1e-12) {
						t.Fatalf("%s/%s level %d: error %g > %g", arr, comp, li, d, eb)
					}
				}
			}
		}
	}
}

func TestPostProcessNeverViolatesDoubleBound(t *testing.T) {
	// Post-processing moves samples by ≤ a·eb < eb from the decompressed
	// value; combined with the compressor bound the reconstruction stays
	// within 2·eb of the original data.
	f := synth.Generate(synth.Nyx, 32, 23)
	h, err := grid.BuildAMR(f, 8, []float64{0.3, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	eb := h.Levels[0].Data.ValueRange() * 5e-3
	res, err := CompressAMR(h, Options{EB: eb, Compressor: SZ2, PostProcess: true})
	if err != nil {
		t.Fatal(err)
	}
	for li := range h.Levels {
		for _, bc := range h.OwnedBlocks(li) {
			a := h.BlockField(li, bc[0], bc[1], bc[2])
			b := res.Hierarchy.BlockField(li, bc[0], bc[1], bc[2])
			if d := a.MaxAbsDiff(b); d > 2*eb*(1+1e-12) {
				t.Fatalf("post-processed error %g exceeds 2·eb %g", d, 2*eb)
			}
		}
	}
}

func TestDifferentSeedsDifferentBlobs(t *testing.T) {
	a, err := CompressUniform(synth.Generate(synth.S3D, 16, 1), Options{RelEB: 1e-3, ROIBlockB: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompressUniform(synth.Generate(synth.S3D, 16, 2), Options{RelEB: 1e-3, ROIBlockB: 8})
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Blob) == string(b.Blob) {
		t.Fatal("different inputs produced identical containers")
	}
}

func TestDeterministicContainer(t *testing.T) {
	f := synth.Generate(synth.RT, 16, 3)
	a, err := CompressUniform(f, Options{RelEB: 1e-3, ROIBlockB: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompressUniform(f, Options{RelEB: 1e-3, ROIBlockB: 8})
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Blob) != string(b.Blob) {
		t.Fatal("compression not deterministic")
	}
}
