package repro

// Streaming write path: CompressTo and CompressToFile emit the container to
// an io.Writer (or atomically to a file) as compression waves complete, so
// ingesting a large field costs the input plus one wave of compressed
// streams — not the input plus every stream plus the assembled blob, as the
// in-memory Result path does. The bytes written are identical to
// Result.Blob for the same options.

import (
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/roi"
	"repro/internal/writer"
)

// WriteResult summarizes a streaming compression write. Unlike Result it
// carries no reconstruction or quality metrics: computing those requires
// decompressing, which would defeat the bounded-memory point of the
// streaming path (decode selectively later via OpenContainer instead).
type WriteResult struct {
	// Bytes is the total container size written, index footer included.
	Bytes int64
	// LevelBytes records the compressed payload per level.
	LevelBytes []int
	// MaxBufferedBytes is the peak total of compressed stream bytes held in
	// memory during the write (bounded by one wave of Workers streams).
	MaxBufferedBytes int64
	// CompressionRatio is raw multi-resolution payload bytes / Bytes.
	CompressionRatio float64
	// Timing breaks down the run (ROI, Preprocess, and Compress stages).
	Timing Timing
}

// CompressTo converts a uniform field to adaptive multi-resolution data via
// ROI extraction and streams the compressed container to w. Options that
// only affect decode-side processing (PostProcess, Uncertainty) are ignored
// here — they never change the container bytes.
func CompressTo(f *Field, opt Options, w io.Writer) (*WriteResult, error) {
	t0 := time.Now()
	h, err := roi.Convert(f, roi.Options{BlockB: opt.ROIBlockB, TopFrac: opt.ROITopFrac})
	if err != nil {
		return nil, err
	}
	troi := time.Since(t0)
	res, err := CompressAMRTo(h, opt, w)
	if err != nil {
		return nil, err
	}
	res.Timing.ROI = troi
	return res, nil
}

// CompressAMRTo streams the compressed container for existing
// multi-resolution data to w.
func CompressAMRTo(h *Hierarchy, opt Options, w io.Writer) (*WriteResult, error) {
	eb, err := opt.resolveEB(h)
	if err != nil {
		return nil, err
	}
	co, err := opt.coreOptions(eb)
	if err != nil {
		return nil, err
	}
	var res WriteResult
	t0 := time.Now()
	prep, err := core.Prepare(h, co)
	if err != nil {
		return nil, err
	}
	res.Timing.Preprocess = time.Since(t0)
	t0 = time.Now()
	wr, err := prep.CompressTo(w)
	if err != nil {
		return nil, err
	}
	res.Timing.Compress = time.Since(t0)
	res.Bytes = wr.Bytes
	res.LevelBytes = wr.LevelBytes
	res.MaxBufferedBytes = wr.MaxBufferedBytes
	res.CompressionRatio = float64(h.PayloadBytes()) / float64(wr.Bytes)
	return &res, nil
}

// CompressToFile is CompressTo into path, written atomically: the container
// streams into a hidden temporary in the same directory and is renamed over
// path only when complete, so concurrent readers (e.g. a serving daemon)
// never observe a partial container.
func CompressToFile(f *Field, opt Options, path string) (*WriteResult, error) {
	var res *WriteResult
	err := writer.AtomicFile(path, 0o644, func(w io.Writer) error {
		var werr error
		res, werr = CompressTo(f, opt, w)
		return werr
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// CompressAMRToFile is CompressAMRTo with the same atomic-replace semantics
// as CompressToFile.
func CompressAMRToFile(h *Hierarchy, opt Options, path string) (*WriteResult, error) {
	var res *WriteResult
	err := writer.AtomicFile(path, 0o644, func(w io.Writer) error {
		var werr error
		res, werr = CompressAMRTo(h, opt, w)
		return werr
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
