package repro

// Public surface of the codec registry (internal/codec): name validation
// for flags and query parameters, and the "level:codec" spec syntax shared
// by mrcompress -levelcodecs and mrserve's ?levelcodecs=.

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/codec"
)

// EntropyLanesAuto selects the entropy lane count automatically from each
// code stream's size (see Options.EntropyLanes).
const EntropyLanesAuto = codec.EntropyLanesAuto

// ParseEntropyLanes parses an entropy lane count as CLI flags and query
// parameters spell it: "" or "1" for the single-lane format, "auto" for
// size-based selection, or a power of two up to 64. Anything else errors
// with the accepted vocabulary.
func ParseEntropyLanes(s string) (int, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" {
		return 0, nil
	}
	if s == "auto" {
		return EntropyLanesAuto, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 || !codec.ValidEntropyLanes(n) {
		return 0, fmt.Errorf("repro: entropy lanes %q: want \"auto\" or a power of two in [1, 64]", s)
	}
	return n, nil
}

// Codecs returns the names of every registered compression backend,
// sorted — the vocabulary Options.Compressor, Options.LevelCodecs, CLI
// flags, and mrserve query parameters accept.
func Codecs() []string { return codec.Names() }

// lookupCodec resolves a Compressor name through the registry ("" = the
// default backend, sz3).
func lookupCodec(name Compressor) (codec.Codec, error) {
	s := string(name)
	if s == "" {
		s = string(SZ3)
	}
	c, ok := codec.ByName(s)
	if !ok {
		return nil, fmt.Errorf("repro: %w", codec.ErrUnknownName(s))
	}
	return c, nil
}

// ParseCodec validates a backend name against the codec registry and
// returns it in canonical (lowercase) form. The empty string resolves to
// the default backend; an unknown name errors with the registered
// vocabulary, so CLI flags and HTTP handlers surface an actionable message.
func ParseCodec(name string) (Compressor, error) {
	c, err := lookupCodec(Compressor(name))
	if err != nil {
		return "", err
	}
	return Compressor(c.Name()), nil
}

// ParseLevelCodecs parses a per-level codec override spec: comma-separated
// "level:codec" pairs, e.g. "0:sz3,2:flate" (level 0 = finest). Every
// codec name must be registered; an empty spec yields a nil map.
func ParseLevelCodecs(spec string) (map[int]Compressor, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	out := make(map[int]Compressor)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		lvl, name, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("repro: level codec %q is not level:codec", part)
		}
		l, err := strconv.Atoi(strings.TrimSpace(lvl))
		if err != nil || l < 0 {
			return nil, fmt.Errorf("repro: bad level %q in level codec spec", lvl)
		}
		name = strings.TrimSpace(name)
		c, ok := codec.ByName(name)
		if !ok {
			return nil, fmt.Errorf("repro: %w", codec.ErrUnknownName(name))
		}
		if _, dup := out[l]; dup {
			return nil, fmt.Errorf("repro: level %d named twice in level codec spec", l)
		}
		out[l] = Compressor(c.Name())
	}
	return out, nil
}
