package repro

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/synth"
)

// TestRandomAccessPublicAPI exercises the exported random-access surface
// end to end: compress a field, write the container to disk, reopen it by
// path, and check level and slice reads against the sequential decode.
func TestRandomAccessPublicAPI(t *testing.T) {
	f := synth.Generate(synth.Nyx, 32, 21)
	res, err := CompressUniform(f, Options{RelEB: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "field.mrw")
	if err := os.WriteFile(path, res.Blob, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := OpenContainerFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	want, err := Decompress(res.Blob)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumLevels() != len(want.Levels) {
		t.Fatalf("NumLevels = %d, want %d", r.NumLevels(), len(want.Levels))
	}
	if nx, ny, nz := r.Dims(); nx != f.Nx || ny != f.Ny || nz != f.Nz {
		t.Fatalf("Dims = %dx%dx%d", nx, ny, nz)
	}
	for l := 0; l < r.NumLevels(); l++ {
		got, err := r.ReadLevel(l)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want.Levels[l].Data) {
			t.Fatalf("level %d differs from Decompress", l)
		}
	}
	plane, err := r.ReadSlice(AxisZ, f.Nz/2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !plane.Equal(want.Levels[0].Data.SliceZ(f.Nz / 2)) {
		t.Fatal("z slice differs from Decompress")
	}
	if st := r.Stats(); st.BackendDecodes == 0 {
		t.Fatal("no backend decodes recorded")
	}

	// The shared-cache constructor serves the same data.
	c := NewBrickCache(32 << 20)
	fh, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	st, err := fh.Stat()
	if err != nil {
		t.Fatal(err)
	}
	rc, err := OpenContainerCached(fh, st.Size(), c, "field")
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := rc.ReadLevel(rc.NumLevels() - 1)
	if err != nil {
		t.Fatal(err)
	}
	if !coarse.Equal(want.Levels[len(want.Levels)-1].Data) {
		t.Fatal("cached open: coarsest level differs")
	}
	if c.Stats().Entries == 0 {
		t.Fatal("shared cache not populated")
	}
}
